//! The synchronous round executor.
//!
//! ## Hot-path design
//!
//! `run_round` is the inner loop of every experiment, so the executor keeps
//! all of its per-round scratch **allocated across rounds**:
//!
//! * the outbox array (one `Outgoing` + accounting row per node) is refilled
//!   in place via `collect_into_vec`,
//! * every node's inbox is a persistent `Vec` that is cleared, not dropped,
//! * multicast delivery is resolved through a stamp array indexed by CSR arc
//!   position (scattered once per round by the senders), replacing the
//!   per-receiver `targets.contains(&v)` scan,
//! * message accounting is folded into the parallel broadcast map instead of
//!   a separate sequential pass over the outboxes.
//!
//! After a warm-up round the executor performs no outbox/inbox heap growth
//! (see [`Network::buffer_stats`] and the `buffer_reuse` test).

use crate::faults::LossModel;
use crate::message::MessageSize;
use crate::metrics::{RoundStats, RunMetrics};
use crate::program::{NodeContext, NodeProgram, Outgoing};
use dkc_graph::{CsrGraph, NodeId, WeightedGraph};
use rayon::prelude::*;
use std::time::Instant;

/// How node programs are executed within a round.
///
/// Rounds are barriers, and within a round nodes interact only through the
/// immutable outbox snapshot, so both modes produce **identical** results; the
/// parallel mode exists for throughput on large simulated networks (and is the
/// subject of the scaling benchmark E9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Plain sequential loop over nodes.
    Sequential,
    /// Data-parallel over nodes using the rayon thread pool.
    #[default]
    Parallel,
}

/// A program bundled with its persistent inbox so the receive phase can run
/// `par_iter_mut` over one slice while reading the shared outbox snapshot.
struct NodeCell<P: NodeProgram> {
    program: P,
    inbox: Vec<(NodeId, P::Message)>,
}

/// Per-sender accounting row produced by the broadcast phase (post-loss: only
/// delivered copies are counted).
#[derive(Clone, Copy, Default)]
struct SendAccount {
    messages: usize,
    payload_bits: usize,
    max_message_bits: usize,
}

/// Capacities of the executor's persistent scratch buffers. Two snapshots
/// taken after warm-up must be equal if the hot path is allocation-free; the
/// buffer-reuse test pins exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorBufferStats {
    /// Capacity of the outbox array (slots, one per node).
    pub outbox_capacity: usize,
    /// Summed capacity of all per-node inboxes.
    pub inbox_capacity_total: usize,
    /// Capacity of the changed-flags array.
    pub changed_capacity: usize,
    /// Length of the arc-indexed multicast stamp array (0 until the first
    /// multicast round).
    pub multicast_stamp_slots: usize,
}

/// A simulated synchronous network: a topology plus one [`NodeProgram`] per
/// node.
pub struct Network<P: NodeProgram> {
    graph: CsrGraph,
    cells: Vec<NodeCell<P>>,
    round: usize,
    metrics: RunMetrics,
    mode: ExecutionMode,
    loss: Option<LossModel>,
    // Persistent per-round scratch (see module docs).
    outboxes: Vec<(Outgoing<P::Message>, SendAccount)>,
    changed: Vec<bool>,
    /// `multicast_stamps[arc] == round` ⇔ the arc's **source** node listed the
    /// arc's destination as a multicast target this round. Senders stamp their
    /// own (cache-resident) arc range; receivers translate through
    /// [`CsrGraph::reverse_arc`]. Stamping avoids an O(arcs) clear per round;
    /// round numbers start at 1 so the zero-initialized array never
    /// false-positives.
    multicast_stamps: Vec<u64>,
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph`, instantiating one program per node via
    /// `factory` (which receives the node's local view at round 0).
    pub fn new<F>(graph: &WeightedGraph, mut factory: F) -> Self
    where
        F: FnMut(&NodeContext<'_>) -> P,
    {
        let csr = CsrGraph::from_graph(graph);
        let programs = (0..csr.num_nodes())
            .map(|i| {
                let ctx = NodeContext::new(&csr, NodeId::new(i), 0);
                factory(&ctx)
            })
            .collect();
        Self::from_parts(csr, programs)
    }

    /// Builds a network from an existing CSR topology and explicit programs
    /// (one per node, in node order).
    pub fn from_parts(graph: CsrGraph, programs: Vec<P>) -> Self {
        assert_eq!(
            graph.num_nodes(),
            programs.len(),
            "one program per node required"
        );
        let cells = programs
            .into_iter()
            .map(|program| NodeCell {
                program,
                inbox: Vec::new(),
            })
            .collect();
        Network {
            graph,
            cells,
            round: 0,
            metrics: RunMetrics::new(),
            mode: ExecutionMode::default(),
            loss: None,
            outboxes: Vec::new(),
            changed: Vec::new(),
            multicast_stamps: Vec::new(),
        }
    }

    /// Selects the execution mode (defaults to [`ExecutionMode::Parallel`]).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables deterministic message-loss fault injection (see
    /// [`crate::faults::LossModel`]): every delivered message is independently
    /// dropped with the given probability. Metrics reflect **post-loss
    /// delivery** — a dropped copy is counted neither in the message nor the
    /// bit totals, and a sender whose copies were all dropped does not count
    /// as sending.
    pub fn with_message_loss(mut self, model: LossModel) -> Self {
        self.loss = Some(model);
        self
    }

    /// The simulated topology.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Accumulated run metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The program of one node.
    pub fn program(&self, v: NodeId) -> &P {
        &self.cells[v.index()].program
    }

    /// Capacities of the executor's persistent scratch buffers (diagnostic;
    /// see the buffer-reuse acceptance test).
    pub fn buffer_stats(&self) -> ExecutorBufferStats {
        ExecutorBufferStats {
            outbox_capacity: self.outboxes.capacity(),
            inbox_capacity_total: self.cells.iter().map(|c| c.inbox.capacity()).sum(),
            changed_capacity: self.changed.capacity(),
            multicast_stamp_slots: self.multicast_stamps.len(),
        }
    }

    /// Consumes the network, returning the final per-node programs and metrics.
    pub fn into_parts(self) -> (Vec<P>, RunMetrics) {
        let programs = self.cells.into_iter().map(|c| c.program).collect();
        (programs, self.metrics)
    }

    /// Executes one synchronous round (broadcast phase, then receive phase) and
    /// returns its statistics.
    pub fn run_round(&mut self) -> RoundStats {
        let started = Instant::now();
        self.round += 1;
        let round = self.round;
        let graph = &self.graph;
        let loss = self.loss;

        // Phase 1: every (non-halted) node produces its outgoing messages.
        // The accounting (post-loss, see `with_message_loss`) is computed in
        // the same map so no separate sequential pass over the outboxes is
        // needed afterwards.
        let broadcast_one = |i: usize, cell: &mut NodeCell<P>| {
            if cell.program.halted() {
                return (Outgoing::Silent, SendAccount::default());
            }
            let sender = NodeId::new(i);
            let ctx = NodeContext::new(graph, sender, round);
            let out = cell.program.broadcast(&ctx);
            let mut acct = SendAccount::default();
            // Post-loss accounting evaluates `drops` here and the receive
            // phase evaluates it again per arc — a deliberate trade-off:
            // the hash is a handful of integer ops, and sharing it would
            // need another arc-indexed scratch array written under the
            // parallel map. Fault-free runs (`loss == None`) skip both.
            let delivered = |to: NodeId| loss.is_none_or(|m| !m.drops(round, sender, to));
            match &out {
                Outgoing::Silent => {}
                Outgoing::Broadcast(m) => {
                    let copies = match loss {
                        None => graph.unweighted_degree(sender),
                        Some(_) => graph
                            .neighbors(sender)
                            .iter()
                            .filter(|&&t| delivered(t))
                            .count(),
                    };
                    if copies > 0 {
                        let bits = m.size_bits();
                        acct.messages = copies;
                        acct.payload_bits = bits * copies;
                        acct.max_message_bits = bits;
                    }
                }
                Outgoing::Multicast(m, targets) => {
                    debug_assert!(
                        targets.iter().all(|&t| graph.has_neighbor(sender, t)),
                        "multicast target is not a neighbour of {sender}"
                    );
                    let copies = match loss {
                        None => targets.len(),
                        Some(_) => targets.iter().filter(|&&t| delivered(t)).count(),
                    };
                    if copies > 0 {
                        let bits = m.size_bits();
                        acct.messages = copies;
                        acct.payload_bits = bits * copies;
                        acct.max_message_bits = bits;
                    }
                }
                Outgoing::Unicast(msgs) => {
                    for (target, m) in msgs {
                        debug_assert!(
                            graph.has_neighbor(sender, *target),
                            "unicast target {target} is not a neighbour of {sender}"
                        );
                        if delivered(*target) {
                            let bits = m.size_bits();
                            acct.messages += 1;
                            acct.payload_bits += bits;
                            acct.max_message_bits = acct.max_message_bits.max(bits);
                        }
                    }
                }
            }
            (out, acct)
        };

        match self.mode {
            ExecutionMode::Parallel => self
                .cells
                .par_iter_mut()
                .enumerate()
                .map(|(i, cell)| broadcast_one(i, cell))
                .collect_into_vec(&mut self.outboxes),
            ExecutionMode::Sequential => {
                self.outboxes.clear();
                self.outboxes.reserve(self.cells.len());
                self.outboxes.extend(
                    self.cells
                        .iter_mut()
                        .enumerate()
                        .map(|(i, cell)| broadcast_one(i, cell)),
                );
            }
        }

        // Reduce the per-sender accounting rows (cheap: plain integers).
        let mut messages = 0usize;
        let mut payload_bits = 0usize;
        let mut max_message_bits = 0usize;
        let mut sending_nodes = 0usize;
        for (_, acct) in &self.outboxes {
            if acct.messages > 0 {
                sending_nodes += 1;
                messages += acct.messages;
                payload_bits += acct.payload_bits;
                max_message_bits = max_message_bits.max(acct.max_message_bits);
            }
        }

        // Multicast scatter: each sender stamps its own CSR arc positions for
        // its targets (looked up in the sender's cache-resident neighbour-rank
        // map), so the receive phase resolves membership with one O(1) stamp
        // load per arc instead of scanning the sender's target list.
        let round_stamp = round as u64;
        let mut any_multicast = false;
        for (i, (out, _)) in self.outboxes.iter().enumerate() {
            if let Outgoing::Multicast(_, targets) = out {
                if targets.is_empty() {
                    continue;
                }
                if !any_multicast {
                    any_multicast = true;
                    if self.multicast_stamps.len() != graph.num_arcs() {
                        self.multicast_stamps = vec![0; graph.num_arcs()];
                    }
                }
                let sender = NodeId::new(i);
                let base = graph.arc_offset(sender);
                for &t in targets {
                    for q in graph.neighbor_positions(sender, t) {
                        self.multicast_stamps[base + q] = round_stamp;
                    }
                }
            }
        }

        // Phase 2: every (non-halted) node collects the messages addressed to
        // it from its neighbours' outboxes into its persistent inbox and
        // updates its state.
        // Delivery order guarantee: the inbox is ordered by the receiver's
        // neighbour-list order (one scan over `graph.neighbors(v)`), which node
        // programs may rely on to merge messages with per-neighbour state in
        // linear time.
        let outboxes = &self.outboxes;
        let stamps = &self.multicast_stamps;
        let receive_one = |i: usize, cell: &mut NodeCell<P>| -> bool {
            if cell.program.halted() {
                return false;
            }
            let v = NodeId::new(i);
            let dropped =
                |from: NodeId| -> bool { loss.map(|m| m.drops(round, from, v)).unwrap_or(false) };
            let arc_base = graph.arc_offset(v);
            cell.inbox.clear();
            for (q, &u) in graph.neighbors(v).iter().enumerate() {
                if dropped(u) {
                    continue;
                }
                match &outboxes[u.index()].0 {
                    Outgoing::Silent => {}
                    Outgoing::Broadcast(m) => cell.inbox.push((u, m.clone())),
                    Outgoing::Multicast(m, targets) => {
                        // The paired sender-side arc (u → v) carries the stamp.
                        // The emptiness check both short-circuits no-op
                        // multicasts and guarantees the stamp array was
                        // allocated (the scatter allocates on the first
                        // non-empty multicast).
                        if !targets.is_empty()
                            && stamps[graph.reverse_arc(arc_base + q)] == round_stamp
                        {
                            cell.inbox.push((u, m.clone()));
                        }
                    }
                    Outgoing::Unicast(msgs) => {
                        for (target, m) in msgs {
                            if *target == v {
                                cell.inbox.push((u, m.clone()));
                            }
                        }
                    }
                }
            }
            let ctx = NodeContext::new(graph, v, round);
            let NodeCell { program, inbox } = cell;
            program.receive(&ctx, inbox)
        };

        match self.mode {
            ExecutionMode::Parallel => self
                .cells
                .par_iter_mut()
                .enumerate()
                .map(|(i, cell)| receive_one(i, cell))
                .collect_into_vec(&mut self.changed),
            ExecutionMode::Sequential => {
                self.changed.clear();
                self.changed.reserve(self.cells.len());
                self.changed.extend(
                    self.cells
                        .iter_mut()
                        .enumerate()
                        .map(|(i, cell)| receive_one(i, cell)),
                );
            }
        }
        let changed_nodes = self.changed.iter().filter(|&&c| c).count();

        let stats = RoundStats {
            round,
            messages,
            payload_bits,
            max_message_bits,
            sending_nodes,
            changed_nodes,
        };
        self.metrics.push(stats);
        self.metrics.add_elapsed(started.elapsed());
        stats
    }

    /// Runs exactly `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs until a round in which no node's state changed (quiescence), or
    /// until `max_rounds` additional rounds have been executed. Returns the
    /// number of rounds executed by this call.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> usize {
        for executed in 1..=max_rounds {
            let stats = self.run_round();
            if stats.changed_nodes == 0 {
                return executed;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::generators::{complete_graph, path_graph};

    /// Toy protocol: every node repeatedly broadcasts the smallest node id it
    /// has heard of. Converges to the global minimum in (eccentricity of the
    /// minimum) rounds — a classic diameter-dependent protocol.
    struct MinIdFlood {
        best: u32,
    }

    impl NodeProgram for MinIdFlood {
        type Message = u32;

        fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<u32> {
            Outgoing::Broadcast(self.best)
        }

        fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, u32)]) -> bool {
            let before = self.best;
            for &(_, m) in inbox {
                self.best = self.best.min(m);
            }
            self.best != before
        }
    }

    fn min_id_network(g: &WeightedGraph, mode: ExecutionMode) -> Network<MinIdFlood> {
        Network::new(g, |ctx| MinIdFlood { best: ctx.node().0 }).with_mode(mode)
    }

    use dkc_graph::WeightedGraph;

    #[test]
    fn flood_takes_diameter_rounds_on_a_path() {
        let g = path_graph(10);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        // After k rounds, node k knows id 0 but node k+1 does not.
        net.run(5);
        assert_eq!(net.program(NodeId(5)).best, 0);
        assert_eq!(net.program(NodeId(6)).best, 1);
        net.run(4);
        for v in net.graph().nodes() {
            assert_eq!(net.program(v).best, 0, "node {v} not converged");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = complete_graph(20);
        let mut seq = min_id_network(&g, ExecutionMode::Sequential);
        let mut par = min_id_network(&g, ExecutionMode::Parallel);
        seq.run(3);
        par.run(3);
        for v in g.nodes() {
            assert_eq!(seq.program(v).best, par.program(v).best);
        }
        assert_eq!(
            seq.metrics().total_messages(),
            par.metrics().total_messages()
        );
    }

    #[test]
    fn quiescence_detection() {
        let g = path_graph(8);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        let rounds = net.run_until_quiescent(100);
        // 7 rounds to converge + 1 quiescent round to detect it.
        assert_eq!(rounds, 8);
        for v in net.graph().nodes() {
            assert_eq!(net.program(v).best, 0);
        }
    }

    #[test]
    fn message_accounting_counts_per_edge() {
        let g = complete_graph(5);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        let stats = net.run_round();
        // Every node broadcasts to 4 neighbours: 20 messages of 32 bits.
        assert_eq!(stats.messages, 20);
        assert_eq!(stats.payload_bits, 20 * 32);
        assert_eq!(stats.max_message_bits, 32);
        assert_eq!(stats.sending_nodes, 5);
    }

    /// A protocol with explicit halting: each node sends one message then halts.
    struct OneShot {
        sent: bool,
        received: usize,
    }

    impl NodeProgram for OneShot {
        type Message = ();

        fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<()> {
            if self.sent {
                Outgoing::Silent
            } else {
                self.sent = true;
                Outgoing::Broadcast(())
            }
        }

        fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, ())]) -> bool {
            self.received += inbox.len();
            !inbox.is_empty()
        }

        fn halted(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn halted_nodes_do_not_participate() {
        let g = complete_graph(4);
        let mut net = Network::new(&g, |_| OneShot {
            sent: false,
            received: 0,
        })
        .with_mode(ExecutionMode::Sequential);
        let s1 = net.run_round();
        assert_eq!(s1.messages, 12);
        // Everyone halted after sending; nothing is delivered in round 1's
        // receive phase? No: messages are delivered in the same round they are
        // sent, but `halted()` became true after the broadcast phase, so the
        // receive phase is skipped for everyone and nothing is counted.
        let s2 = net.run_round();
        assert_eq!(s2.messages, 0);
        assert_eq!(s2.changed_nodes, 0);
    }

    #[test]
    fn unicast_and_multicast_delivery() {
        struct Directed;
        impl NodeProgram for Directed {
            type Message = u64;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u64> {
                // Node 0 unicasts 7 to node 1 only; others multicast 9 to their
                // first neighbour.
                if ctx.node() == NodeId(0) {
                    Outgoing::Unicast(vec![(NodeId(1), 7)])
                } else {
                    let first = ctx.neighbors()[0];
                    Outgoing::Multicast(9, vec![first])
                }
            }
            fn receive(&mut self, ctx: &NodeContext<'_>, inbox: &[(NodeId, u64)]) -> bool {
                if ctx.node() == NodeId(1) {
                    assert!(inbox.iter().any(|&(s, m)| s == NodeId(0) && m == 7));
                }
                if ctx.node() == NodeId(2) {
                    // Node 2's message from node 0 must NOT be delivered
                    // (node 0 unicast only to node 1).
                    assert!(!inbox.iter().any(|&(s, _)| s == NodeId(0)));
                }
                false
            }
        }
        let g = complete_graph(3);
        let mut net = Network::new(&g, |_| Directed).with_mode(ExecutionMode::Sequential);
        let stats = net.run_round();
        // node0: 1 unicast; node1: 1 multicast; node2: 1 multicast.
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.max_message_bits, 64);
    }

    /// Every node multicasts to a rotating subset of its neighbours — keeps
    /// the multicast stamp path busy across rounds.
    struct RotatingMulticast {
        heard: Vec<(u32, u32)>,
    }

    impl NodeProgram for RotatingMulticast {
        type Message = u32;

        fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u32> {
            let nbrs = ctx.neighbors();
            let take = (ctx.round() % (nbrs.len() + 1)).max(1);
            let start = (ctx.node().index() + ctx.round()) % nbrs.len();
            let targets: Vec<NodeId> = (0..take).map(|k| nbrs[(start + k) % nbrs.len()]).collect();
            Outgoing::Multicast(ctx.node().0, targets)
        }

        fn receive(&mut self, ctx: &NodeContext<'_>, inbox: &[(NodeId, u32)]) -> bool {
            for &(s, m) in inbox {
                self.heard.push((s.0, m.wrapping_add(ctx.round() as u32)));
            }
            !inbox.is_empty()
        }
    }

    #[test]
    fn multicast_modes_agree_on_rotating_subsets() {
        let g = complete_graph(9);
        let mut seq = Network::new(&g, |_| RotatingMulticast { heard: vec![] })
            .with_mode(ExecutionMode::Sequential);
        let mut par = Network::new(&g, |_| RotatingMulticast { heard: vec![] })
            .with_mode(ExecutionMode::Parallel);
        seq.run(6);
        par.run(6);
        for v in g.nodes() {
            assert_eq!(seq.program(v).heard, par.program(v).heard);
        }
        assert_eq!(seq.metrics().rounds(), par.metrics().rounds());
    }

    #[test]
    fn multicast_delivery_covers_parallel_edges() {
        // Node 0 and node 1 are joined by two parallel edges; a multicast
        // naming the neighbour once must be delivered once per parallel arc
        // (the receiver scans its neighbour list), exactly like the old
        // `targets.contains` path.
        let mut g = WeightedGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        struct ZeroMulticasts {
            received: usize,
        }
        impl NodeProgram for ZeroMulticasts {
            type Message = u32;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u32> {
                if ctx.node() == NodeId(0) {
                    Outgoing::Multicast(1, vec![NodeId(1)])
                } else {
                    Outgoing::Silent
                }
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, u32)]) -> bool {
                self.received += inbox.len();
                false
            }
        }
        let mut net = Network::new(&g, |_| ZeroMulticasts { received: 0 })
            .with_mode(ExecutionMode::Sequential);
        let stats = net.run_round();
        assert_eq!(stats.messages, 1, "accounting counts target entries");
        assert_eq!(
            net.program(NodeId(1)).received,
            2,
            "one delivery per parallel arc"
        );
        assert_eq!(net.program(NodeId(2)).received, 0);
    }

    #[test]
    fn buffer_reuse_after_warmup() {
        let g = complete_graph(12);
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut net = Network::new(&g, |_| RotatingMulticast { heard: vec![] }).with_mode(mode);
            // Warm-up: one full rotation cycle, so every inbox has seen its
            // maximum per-round message count at least once.
            net.run(12);
            let warm = net.buffer_stats();
            assert!(warm.outbox_capacity >= 12);
            assert!(warm.multicast_stamp_slots == net.graph().num_arcs());
            net.run(24);
            assert_eq!(
                net.buffer_stats(),
                warm,
                "steady-state rounds must not grow executor buffers ({mode:?})"
            );
        }
    }

    #[test]
    fn empty_multicast_is_silent_and_does_not_panic() {
        // Regression: an empty-target multicast in a round with no other
        // multicast used to index the unallocated stamp array in the receive
        // phase.
        struct EmptyMulticast {
            received: usize,
        }
        impl NodeProgram for EmptyMulticast {
            type Message = u32;
            fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<u32> {
                Outgoing::Multicast(1, vec![])
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, u32)]) -> bool {
                self.received += inbox.len();
                false
            }
        }
        let g = complete_graph(3);
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut net = Network::new(&g, |_| EmptyMulticast { received: 0 }).with_mode(mode);
            let stats = net.run_round();
            assert_eq!(stats.messages, 0);
            assert_eq!(stats.sending_nodes, 0);
            for v in g.nodes() {
                assert_eq!(net.program(v).received, 0);
            }
        }
    }

    #[test]
    fn multicast_loss_accounting_reflects_delivery() {
        // With certain loss, a multicast sender's copies are all dropped:
        // nothing may be counted. (Regression test: the old executor counted
        // the sender's messages even when every target was dropped.)
        let g = complete_graph(4);
        struct AlwaysMulticast;
        impl NodeProgram for AlwaysMulticast {
            type Message = u32;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u32> {
                Outgoing::Multicast(3, ctx.neighbors().to_vec())
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, u32)]) -> bool {
                assert!(inbox.is_empty(), "loss=1.0 must drop every copy");
                false
            }
        }
        let mut net = Network::new(&g, |_| AlwaysMulticast)
            .with_mode(ExecutionMode::Sequential)
            .with_message_loss(LossModel::new(1.0, 7));
        let stats = net.run_round();
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.payload_bits, 0);
        assert_eq!(stats.max_message_bits, 0);
        assert_eq!(stats.sending_nodes, 0);
    }

    #[test]
    fn partial_loss_accounting_matches_the_loss_model() {
        let g = complete_graph(6);
        let model = LossModel::new(0.5, 99);
        let mut net = min_id_network(&g, ExecutionMode::Sequential).with_message_loss(model);
        let stats = net.run_round();
        // Recompute the expected delivered-copy count straight from the model.
        let mut expected = 0usize;
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v && !model.drops(1, u, v) {
                    expected += 1;
                }
            }
        }
        assert!(
            expected > 0 && expected < 30,
            "seed produced a trivial case"
        );
        assert_eq!(stats.messages, expected);
        assert_eq!(stats.payload_bits, expected * 32);
    }

    #[test]
    #[should_panic]
    fn program_count_must_match_node_count() {
        let g = complete_graph(3);
        let csr = CsrGraph::from(&g);
        let _ = Network::from_parts(csr, vec![MinIdFlood { best: 0 }]);
    }
}
