//! The synchronous round executor.

use crate::faults::LossModel;
use crate::message::MessageSize;
use crate::metrics::{RoundStats, RunMetrics};
use crate::program::{NodeContext, NodeProgram, Outgoing};
use dkc_graph::{CsrGraph, NodeId, WeightedGraph};
use rayon::prelude::*;

/// How node programs are executed within a round.
///
/// Rounds are barriers, and within a round nodes interact only through the
/// immutable outbox snapshot, so both modes produce **identical** results; the
/// parallel mode exists for throughput on large simulated networks (and is the
/// subject of the scaling benchmark E9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Plain sequential loop over nodes.
    Sequential,
    /// Data-parallel over nodes using the rayon thread pool.
    #[default]
    Parallel,
}

/// A simulated synchronous network: a topology plus one [`NodeProgram`] per
/// node.
pub struct Network<P: NodeProgram> {
    graph: CsrGraph,
    programs: Vec<P>,
    round: usize,
    metrics: RunMetrics,
    mode: ExecutionMode,
    loss: Option<LossModel>,
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph`, instantiating one program per node via
    /// `factory` (which receives the node's local view at round 0).
    pub fn new<F>(graph: &WeightedGraph, mut factory: F) -> Self
    where
        F: FnMut(&NodeContext<'_>) -> P,
    {
        let csr = CsrGraph::from_graph(graph);
        let programs = (0..csr.num_nodes())
            .map(|i| {
                let ctx = NodeContext::new(&csr, NodeId::new(i), 0);
                factory(&ctx)
            })
            .collect();
        Network {
            graph: csr,
            programs,
            round: 0,
            metrics: RunMetrics::new(),
            mode: ExecutionMode::default(),
            loss: None,
        }
    }

    /// Builds a network from an existing CSR topology and explicit programs
    /// (one per node, in node order).
    pub fn from_parts(graph: CsrGraph, programs: Vec<P>) -> Self {
        assert_eq!(
            graph.num_nodes(),
            programs.len(),
            "one program per node required"
        );
        Network {
            graph,
            programs,
            round: 0,
            metrics: RunMetrics::new(),
            mode: ExecutionMode::default(),
            loss: None,
        }
    }

    /// Selects the execution mode (defaults to [`ExecutionMode::Parallel`]).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables deterministic message-loss fault injection (see
    /// [`crate::faults::LossModel`]): every delivered message is independently
    /// dropped with the given probability. Metrics still count the message as
    /// sent (the sender paid for it) but the receiver never sees it.
    pub fn with_message_loss(mut self, model: LossModel) -> Self {
        self.loss = Some(model);
        self
    }

    /// The simulated topology.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Accumulated run metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The per-node programs (indexed by node id).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// The program of one node.
    pub fn program(&self, v: NodeId) -> &P {
        &self.programs[v.index()]
    }

    /// Consumes the network, returning the final per-node programs and metrics.
    pub fn into_parts(self) -> (Vec<P>, RunMetrics) {
        (self.programs, self.metrics)
    }

    /// Executes one synchronous round (broadcast phase, then receive phase) and
    /// returns its statistics.
    pub fn run_round(&mut self) -> RoundStats {
        self.round += 1;
        let round = self.round;
        let graph = &self.graph;
        let n = graph.num_nodes();

        // Phase 1: every (non-halted) node produces its outgoing messages.
        let outboxes: Vec<Outgoing<P::Message>> = match self.mode {
            ExecutionMode::Parallel => self
                .programs
                .par_iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    if p.halted() {
                        Outgoing::Silent
                    } else {
                        let ctx = NodeContext::new(graph, NodeId::new(i), round);
                        p.broadcast(&ctx)
                    }
                })
                .collect(),
            ExecutionMode::Sequential => self
                .programs
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    if p.halted() {
                        Outgoing::Silent
                    } else {
                        let ctx = NodeContext::new(graph, NodeId::new(i), round);
                        p.broadcast(&ctx)
                    }
                })
                .collect(),
        };

        // Message accounting.
        let mut messages = 0usize;
        let mut payload_bits = 0usize;
        let mut max_message_bits = 0usize;
        let mut sending_nodes = 0usize;
        for (i, out) in outboxes.iter().enumerate() {
            let sender = NodeId::new(i);
            match out {
                Outgoing::Silent => {}
                Outgoing::Broadcast(m) => {
                    let deg = graph.unweighted_degree(sender);
                    if deg > 0 {
                        sending_nodes += 1;
                        messages += deg;
                        let bits = m.size_bits();
                        payload_bits += bits * deg;
                        max_message_bits = max_message_bits.max(bits);
                    }
                }
                Outgoing::Multicast(m, targets) => {
                    if !targets.is_empty() {
                        sending_nodes += 1;
                        messages += targets.len();
                        let bits = m.size_bits();
                        payload_bits += bits * targets.len();
                        max_message_bits = max_message_bits.max(bits);
                        debug_assert!(
                            targets.iter().all(|t| graph.neighbors(sender).contains(t)),
                            "multicast target is not a neighbour of {sender}"
                        );
                    }
                }
                Outgoing::Unicast(msgs) => {
                    if !msgs.is_empty() {
                        sending_nodes += 1;
                        messages += msgs.len();
                        for (target, m) in msgs {
                            let bits = m.size_bits();
                            payload_bits += bits;
                            max_message_bits = max_message_bits.max(bits);
                            debug_assert!(
                                graph.neighbors(sender).contains(target),
                                "unicast target {target} is not a neighbour of {sender}"
                            );
                        }
                    }
                }
            }
        }

        // Phase 2: every (non-halted) node collects the messages addressed to
        // it from its neighbours' outboxes and updates its state.
        // Delivery order guarantee: the inbox is ordered by the receiver's
        // neighbour-list order (one scan over `graph.neighbors(v)`), which node
        // programs may rely on to merge messages with per-neighbour state in
        // linear time.
        let loss = self.loss;
        let deliver_to = |v: NodeId| -> Vec<(NodeId, P::Message)> {
            let mut inbox = Vec::new();
            let dropped =
                |from: NodeId| -> bool { loss.map(|m| m.drops(round, from, v)).unwrap_or(false) };
            for &u in graph.neighbors(v) {
                if dropped(u) {
                    continue;
                }
                match &outboxes[u.index()] {
                    Outgoing::Silent => {}
                    Outgoing::Broadcast(m) => inbox.push((u, m.clone())),
                    Outgoing::Multicast(m, targets) => {
                        if targets.contains(&v) {
                            inbox.push((u, m.clone()));
                        }
                    }
                    Outgoing::Unicast(msgs) => {
                        for (target, m) in msgs {
                            if *target == v {
                                inbox.push((u, m.clone()));
                            }
                        }
                    }
                }
            }
            inbox
        };

        let changed_flags: Vec<bool> = match self.mode {
            ExecutionMode::Parallel => self
                .programs
                .par_iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    if p.halted() {
                        return false;
                    }
                    let v = NodeId::new(i);
                    let inbox = deliver_to(v);
                    let ctx = NodeContext::new(graph, v, round);
                    p.receive(&ctx, &inbox)
                })
                .collect(),
            ExecutionMode::Sequential => self
                .programs
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    if p.halted() {
                        return false;
                    }
                    let v = NodeId::new(i);
                    let inbox = deliver_to(v);
                    let ctx = NodeContext::new(graph, v, round);
                    p.receive(&ctx, &inbox)
                })
                .collect(),
        };
        let changed_nodes = changed_flags.iter().filter(|&&c| c).count();

        let stats = RoundStats {
            round,
            messages,
            payload_bits,
            max_message_bits,
            sending_nodes,
            changed_nodes,
        };
        self.metrics.push(stats);
        debug_assert!(n == self.programs.len());
        stats
    }

    /// Runs exactly `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs until a round in which no node's state changed (quiescence), or
    /// until `max_rounds` additional rounds have been executed. Returns the
    /// number of rounds executed by this call.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> usize {
        for executed in 1..=max_rounds {
            let stats = self.run_round();
            if stats.changed_nodes == 0 {
                return executed;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::generators::{complete_graph, path_graph};

    /// Toy protocol: every node repeatedly broadcasts the smallest node id it
    /// has heard of. Converges to the global minimum in (eccentricity of the
    /// minimum) rounds — a classic diameter-dependent protocol.
    struct MinIdFlood {
        best: u32,
    }

    impl NodeProgram for MinIdFlood {
        type Message = u32;

        fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<u32> {
            Outgoing::Broadcast(self.best)
        }

        fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, u32)]) -> bool {
            let before = self.best;
            for &(_, m) in inbox {
                self.best = self.best.min(m);
            }
            self.best != before
        }
    }

    fn min_id_network(g: &WeightedGraph, mode: ExecutionMode) -> Network<MinIdFlood> {
        Network::new(g, |ctx| MinIdFlood { best: ctx.node().0 }).with_mode(mode)
    }

    use dkc_graph::WeightedGraph;

    #[test]
    fn flood_takes_diameter_rounds_on_a_path() {
        let g = path_graph(10);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        // After k rounds, node k knows id 0 but node k+1 does not.
        net.run(5);
        assert_eq!(net.program(NodeId(5)).best, 0);
        assert_eq!(net.program(NodeId(6)).best, 1);
        net.run(4);
        for v in net.graph().nodes() {
            assert_eq!(net.program(v).best, 0, "node {v} not converged");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = complete_graph(20);
        let mut seq = min_id_network(&g, ExecutionMode::Sequential);
        let mut par = min_id_network(&g, ExecutionMode::Parallel);
        seq.run(3);
        par.run(3);
        for v in g.nodes() {
            assert_eq!(seq.program(v).best, par.program(v).best);
        }
        assert_eq!(
            seq.metrics().total_messages(),
            par.metrics().total_messages()
        );
    }

    #[test]
    fn quiescence_detection() {
        let g = path_graph(8);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        let rounds = net.run_until_quiescent(100);
        // 7 rounds to converge + 1 quiescent round to detect it.
        assert_eq!(rounds, 8);
        for v in net.graph().nodes() {
            assert_eq!(net.program(v).best, 0);
        }
    }

    #[test]
    fn message_accounting_counts_per_edge() {
        let g = complete_graph(5);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        let stats = net.run_round();
        // Every node broadcasts to 4 neighbours: 20 messages of 32 bits.
        assert_eq!(stats.messages, 20);
        assert_eq!(stats.payload_bits, 20 * 32);
        assert_eq!(stats.max_message_bits, 32);
        assert_eq!(stats.sending_nodes, 5);
    }

    /// A protocol with explicit halting: each node sends one message then halts.
    struct OneShot {
        sent: bool,
        received: usize,
    }

    impl NodeProgram for OneShot {
        type Message = ();

        fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<()> {
            if self.sent {
                Outgoing::Silent
            } else {
                self.sent = true;
                Outgoing::Broadcast(())
            }
        }

        fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[(NodeId, ())]) -> bool {
            self.received += inbox.len();
            !inbox.is_empty()
        }

        fn halted(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn halted_nodes_do_not_participate() {
        let g = complete_graph(4);
        let mut net = Network::new(&g, |_| OneShot {
            sent: false,
            received: 0,
        })
        .with_mode(ExecutionMode::Sequential);
        let s1 = net.run_round();
        assert_eq!(s1.messages, 12);
        // Everyone halted after sending; nothing is delivered in round 1's
        // receive phase? No: messages are delivered in the same round they are
        // sent, but `halted()` became true after the broadcast phase, so the
        // receive phase is skipped for everyone and nothing is counted.
        let s2 = net.run_round();
        assert_eq!(s2.messages, 0);
        assert_eq!(s2.changed_nodes, 0);
    }

    #[test]
    fn unicast_and_multicast_delivery() {
        struct Directed;
        impl NodeProgram for Directed {
            type Message = u64;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u64> {
                // Node 0 unicasts 7 to node 1 only; others multicast 9 to their
                // first neighbour.
                if ctx.node() == NodeId(0) {
                    Outgoing::Unicast(vec![(NodeId(1), 7)])
                } else {
                    let first = ctx.neighbors()[0];
                    Outgoing::Multicast(9, vec![first])
                }
            }
            fn receive(&mut self, ctx: &NodeContext<'_>, inbox: &[(NodeId, u64)]) -> bool {
                if ctx.node() == NodeId(1) {
                    assert!(inbox.iter().any(|&(s, m)| s == NodeId(0) && m == 7));
                }
                if ctx.node() == NodeId(2) {
                    // Node 2's message from node 0 must NOT be delivered
                    // (node 0 unicast only to node 1).
                    assert!(!inbox.iter().any(|&(s, _)| s == NodeId(0)));
                }
                false
            }
        }
        let g = complete_graph(3);
        let mut net = Network::new(&g, |_| Directed).with_mode(ExecutionMode::Sequential);
        let stats = net.run_round();
        // node0: 1 unicast; node1: 1 multicast; node2: 1 multicast.
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.max_message_bits, 64);
    }

    #[test]
    #[should_panic]
    fn program_count_must_match_node_count() {
        let g = complete_graph(3);
        let csr = CsrGraph::from(&g);
        let _ = Network::from_parts(csr, vec![MinIdFlood { best: 0 }]);
    }
}
