//! The synchronous round executor.
//!
//! ## Hot-path design
//!
//! `run_round` is the inner loop of every experiment, so the executor keeps
//! all of its per-round scratch **allocated across rounds**:
//!
//! * the outbox array (one `Outgoing` + accounting row per node) is refilled
//!   in place via `collect_into_vec`,
//! * every node's inbox is a persistent `Vec` that is cleared, not dropped,
//! * multicast delivery is resolved through a stamp array indexed by CSR arc
//!   position (scattered once per round by the senders), replacing the
//!   per-receiver `targets.contains(&v)` scan,
//! * message accounting is folded into the parallel broadcast map instead of
//!   a separate sequential pass over the outboxes.
//!
//! After a warm-up round the executor performs no outbox/inbox heap growth
//! (see [`Network::buffer_stats`] and the `buffer_reuse` test).
//!
//! ## Dense vs sparse activation
//!
//! The paper's elimination procedures converge monotonically: after a few
//! rounds most nodes' state stops changing, yet dense execution still runs
//! every node every round. The **sparse frontier modes**
//! ([`ExecutionMode::SparseSequential`] / [`ExecutionMode::SparseParallel`])
//! keep a persistent active frontier instead:
//!
//! * only nodes whose last step reported a change (plus senders whose copies
//!   were dropped by the fault plan — crashed receivers excepted, see
//!   [`crate::faults`]) run `broadcast`; crashed nodes leave the frontier,
//! * messages are **scattered** sender-side into the receivers' inboxes
//!   (using [`CsrGraph::reverse_arc`] for O(1) position translation), and only
//!   nodes that actually received something run `receive`,
//! * quiescence detection falls out for free: an empty frontier makes the
//!   round O(1).
//!
//! Sparse execution is result-identical to dense execution for programs that
//! satisfy the delta-driven contract ([`NodeProgram::DELTA_DRIVEN`]); the
//! executor refuses sparse modes for programs that do not opt in. The
//! per-round work executed is reported as [`RoundStats::node_updates`], a
//! deterministic counter suitable for CI gating.

use crate::checkpoint::{self, CheckpointError, SnapshotState};
use crate::faults::{Behavior, DropCause, FaultPlan, LossModel};
use crate::message::{MessageSize, Tamper};
use crate::metrics::{RoundStats, RunMetrics};
use crate::program::{Delivery, NodeContext, NodeProgram, Outgoing};
use crate::shard::{BoundaryDelta, BoundaryRecord};
use crate::wire::{WireCodec, WireReader, WireWriter};
use dkc_graph::{CsrGraph, NodeId, Partitioner, WeightedGraph};
use rayon::prelude::*;
use serde::ser::Serialize;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How node programs are executed within a round.
///
/// Rounds are barriers, and within a round nodes interact only through the
/// immutable outbox snapshot, so the sequential and parallel variants of each
/// activation kind produce **identical** results. The dense modes run every
/// non-halted node every round; the sparse modes run only the active frontier
/// and require [`NodeProgram::DELTA_DRIVEN`] (for delta-driven programs all
/// four modes produce identical protocol results — the dense modes remain
/// available for A/B measurements).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Dense: plain sequential loop over all nodes.
    Sequential,
    /// Dense: data-parallel over all nodes using the rayon thread pool.
    #[default]
    Parallel,
    /// Sparse: frontier-driven worklist execution, sequential. Per-round cost
    /// is proportional to the active frontier and its out-neighbourhood.
    SparseSequential,
    /// Sparse: frontier-driven activation with a chunk-parallel receive phase.
    /// The receive scan is O(n) with an O(1) skip per inactive node (the
    /// vendored rayon parallelizes contiguous slices only), so prefer
    /// [`ExecutionMode::SparseSequential`] when the frontier is tiny relative
    /// to n; the deterministic counters are identical either way.
    SparseParallel,
    /// Dense semantics over a message-passing runtime: node shards run on
    /// scoped threads and exchange **wire-encoded byte frames** through
    /// bounded mailbox channels instead of reading a shared outbox snapshot
    /// (see [`crate::wire`]). Deterministic counters (including
    /// `wire_bits`) are byte-identical to [`ExecutionMode::Sequential`] /
    /// [`ExecutionMode::Parallel`] for any program and fault plan, at any
    /// thread count. Configure via [`NetworkBuilder::threads`] /
    /// [`NetworkBuilder::mailbox_capacity`] /
    /// [`NetworkBuilder::max_frame_bytes`].
    Mailbox,
    /// Sparse semantics over an edge-cut shard partition: each shard runs the
    /// round's frontier over the nodes it owns (per the deterministic
    /// `dkc_graph::Partitioner` assignment) and cross-shard deliveries travel
    /// as one [`crate::shard::BoundaryDelta`] wire frame per ordered shard
    /// pair, built from the frontier ∩ boundary set and defensively decoded
    /// on receipt. Deterministic counters are byte-identical to the sparse
    /// lockstep modes for any shard count; the frame traffic is reported
    /// separately as [`RoundStats::boundary_bits`] /
    /// [`RoundStats::boundary_nodes`]. Configure via
    /// [`NetworkBuilder::shards`] / [`NetworkBuilder::shard_seed`].
    Sharded,
}

impl ExecutionMode {
    /// Whether this mode uses the sparse frontier executor
    /// ([`ExecutionMode::Sharded`] included: shards run the same
    /// frontier-driven rounds locally).
    pub fn is_sparse(self) -> bool {
        matches!(
            self,
            ExecutionMode::SparseSequential
                | ExecutionMode::SparseParallel
                | ExecutionMode::Sharded
        )
    }

    /// Whether node steps run data-parallel.
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            ExecutionMode::Parallel | ExecutionMode::SparseParallel | ExecutionMode::Mailbox
        )
    }

    /// The dense counterpart of this mode (identity for dense modes). Used by
    /// protocol runners whose programs are not delta-driven to degrade
    /// gracefully when a caller asks for sparse execution.
    pub fn dense(self) -> Self {
        match self {
            ExecutionMode::Sequential
            | ExecutionMode::SparseSequential
            // A non-delta-driven program cannot run sharded rounds (they are
            // frontier-driven), so degrade to the sequential dense executor.
            | ExecutionMode::Sharded => ExecutionMode::Sequential,
            ExecutionMode::Parallel | ExecutionMode::SparseParallel => ExecutionMode::Parallel,
            // Mailbox already runs dense semantics; keep the backend.
            ExecutionMode::Mailbox => ExecutionMode::Mailbox,
        }
    }
}

/// A program bundled with its persistent inbox so the receive phase can run
/// `par_iter_mut` over one slice while reading the shared outbox snapshot.
pub(crate) struct NodeCell<P: NodeProgram> {
    pub(crate) program: P,
    pub(crate) inbox: Vec<Delivery<P::Message>>,
}

/// Per-sender accounting row produced by the broadcast phase (post-fault:
/// only delivered copies are counted in the message/bit totals; dropped
/// copies are tallied per fault component).
#[derive(Clone, Copy, Default)]
pub(crate) struct SendAccount {
    pub(crate) messages: usize,
    pub(crate) payload_bits: usize,
    /// Measured wire bits (length-prefixed encoded frames) of the delivered
    /// copies; 0 when wire accounting is disabled.
    pub(crate) wire_bits: usize,
    pub(crate) max_message_bits: usize,
    /// Copies of this round's send dropped by the i.i.d. loss component.
    pub(crate) dropped_loss: usize,
    /// Copies dropped inside a burst-outage window.
    pub(crate) dropped_burst: usize,
    /// Copies dropped by the active partition cut.
    pub(crate) dropped_partition: usize,
    /// Copies dropped by the byzantine sender selectively muting.
    pub(crate) dropped_byzantine: usize,
}

impl SendAccount {
    /// Records `k` dropped copies at once (a spamming sender's duplicated
    /// frames share one drop decision, so the whole burst drops together).
    #[inline]
    pub(crate) fn record_drops(&mut self, cause: DropCause, k: usize) {
        match cause {
            DropCause::Loss => self.dropped_loss += k,
            DropCause::Burst => self.dropped_burst += k,
            DropCause::Partition => self.dropped_partition += k,
            DropCause::ByzantineMute => self.dropped_byzantine += k,
        }
    }

    /// Whether any copy of this round's send was dropped. The sparse executor
    /// keeps such senders in the frontier so they re-send next round,
    /// reproducing exactly the delivery rounds of a dense run (which
    /// re-broadcasts every round anyway). Dense execution ignores this.
    /// Copies addressed to crashed nodes are *not* drops: a crash is
    /// permanent, so re-sending to the dead receiver would pin its
    /// neighbours in the frontier forever for no observable effect.
    #[inline]
    pub(crate) fn any_dropped(&self) -> bool {
        self.dropped_loss + self.dropped_burst + self.dropped_partition + self.dropped_byzantine > 0
    }
}

/// Outcome of one node's receive phase.
#[derive(Clone, Copy, Default)]
struct StepResult {
    /// Whether the node executed its step (false for halted/untouched nodes).
    ran: bool,
    /// Whether the node reported a state change.
    changed: bool,
}

/// Capacities of the executor's persistent scratch buffers. Two snapshots
/// taken after warm-up must be equal if the hot path is allocation-free; the
/// buffer-reuse test pins exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorBufferStats {
    /// Capacity of the outbox array (slots, one per node).
    pub outbox_capacity: usize,
    /// Summed capacity of all per-node inboxes.
    pub inbox_capacity_total: usize,
    /// Capacity of the step-result array.
    pub changed_capacity: usize,
    /// Length of the arc-indexed multicast stamp array (0 until the first
    /// multicast round).
    pub multicast_stamp_slots: usize,
    /// Summed capacity of the sparse executor's frontier / touch / resend
    /// worklists (0 under dense modes).
    pub frontier_capacity_total: usize,
}

/// State of the [`ExecutionMode::Sharded`] executor: the deterministic node →
/// shard assignment plus the per-round cross-shard record buffers. The
/// buffers are drained by the boundary exchange every round, so they are
/// always empty at round boundaries and never appear in checkpoints.
struct ShardState<M> {
    /// Number of shards (≥ 1; a single shard has no cut and ships nothing).
    num_shards: usize,
    /// The `Partitioner` hash seed the owner table was derived from.
    seed: u64,
    /// `owner[v]` is the shard owning node `v` (the `Partitioner::shard_of`
    /// table materialized once at install time).
    owner: Vec<u32>,
    /// Per ordered shard pair `(src, dst)` (indexed `src * num_shards + dst`)
    /// the cross-shard records buffered during the frontier scatter, shipped
    /// and drained by the boundary exchange at the end of phase 2.
    pair_bufs: Vec<Vec<BoundaryRecord<M>>>,
    /// Scratch for counting the round's distinct cross-shard senders.
    senders_scratch: Vec<u32>,
}

/// A simulated synchronous network: a topology plus one [`NodeProgram`] per
/// node.
pub struct Network<P: NodeProgram> {
    pub(crate) graph: CsrGraph,
    pub(crate) cells: Vec<NodeCell<P>>,
    pub(crate) round: usize,
    pub(crate) metrics: RunMetrics,
    mode: ExecutionMode,
    /// The installed fault plan; `None` ⇔ the plan is trivial, so the
    /// fault-free hot path runs with zero fault bookkeeping.
    pub(crate) faults: Option<FaultPlan>,
    /// Sorted crash rounds of every node that ever crashes under the plan
    /// (see [`FaultPlan::crash_schedule`]); empty without a crash component.
    pub(crate) crash_schedule: Vec<u32>,
    /// Sorted rounds of every byzantine accusation event under the plan
    /// (see [`FaultPlan::byz_accusation_schedule`]); empty without a
    /// byzantine component. Schedule-driven, so identical in every mode.
    pub(crate) byz_accusation_schedule: Vec<u32>,
    /// Sorted quarantine-entry rounds of every node the plan ever
    /// quarantines (see [`FaultPlan::quarantine_schedule`]).
    pub(crate) quarantine_schedule: Vec<u32>,
    /// Whether executors charge measured `wire_bits` (see
    /// [`NetworkBuilder::wire_accounting`]). The mailbox backend encodes
    /// frames regardless; this only gates the counter.
    pub(crate) wire_accounting: bool,
    /// Shard-thread count for [`ExecutionMode::Mailbox`]; `None` uses
    /// [`rayon::current_num_threads`].
    pub(crate) mailbox_threads: Option<usize>,
    /// Bounded per-shard mailbox capacity (frames) for the mailbox backend.
    pub(crate) mailbox_capacity: usize,
    /// Maximum accepted frame payload, in bytes; longer frames are rejected
    /// on decode and attributed to the sender (tofn-style).
    pub(crate) max_frame_bytes: usize,
    /// Per-sender counts of frames rejected by the wire decoder under the
    /// mailbox backend (truncated/oversized/garbage); empty until a decode
    /// failure happens. Indexed by node.
    pub(crate) decode_faults: Vec<u32>,
    // Persistent per-round scratch (see module docs).
    outboxes: Vec<(Outgoing<P::Message>, SendAccount)>,
    step_results: Vec<StepResult>,
    /// `multicast_stamps[arc] == round` ⇔ the arc's **source** node listed the
    /// arc's destination as a multicast target this round. Senders stamp their
    /// own (cache-resident) arc range; receivers translate through
    /// [`CsrGraph::reverse_arc`]. Stamping avoids an O(arcs) clear per round;
    /// round numbers start at 1 so the zero-initialized array never
    /// false-positives. (The sparse scatter reuses the same array to
    /// deduplicate repeated multicast target entries.)
    multicast_stamps: Vec<u64>,
    // Sparse-frontier state (unused under dense modes).
    /// Nodes that broadcast this round, ascending.
    frontier: Vec<u32>,
    /// Next round's frontier, built during the receive phase.
    next_frontier: Vec<u32>,
    /// Nodes that received at least one message this round.
    touch_list: Vec<u32>,
    /// `touched_stamp[v] == round` ⇔ v is in `touch_list` this round.
    touched_stamp: Vec<u64>,
    /// Frontier senders with loss-dropped copies (they re-send next round).
    resend: Vec<u32>,
    /// Shard partition + boundary-exchange buffers; `Some` ⇔ the mode is
    /// [`ExecutionMode::Sharded`].
    shard: Option<ShardState<P::Message>>,
    /// Checkpoint interval in rounds for [`Network::run_with_checkpoints`]
    /// (0 = never; see [`NetworkBuilder::checkpoint_every`]).
    checkpoint_every: usize,
    /// Checkpoint destination path + embedder preamble (see
    /// [`Network::checkpoint_to`]); `None` disables checkpoint writing.
    checkpoint_sink: Option<(PathBuf, Vec<u8>)>,
}

/// Measures one message's on-the-wire frame size in bits, flagging (in debug
/// builds) any message whose `MessageSize` estimate undercounts its encoding.
/// Returns 0 when wire accounting is off so the counting serializer never
/// runs on the hot path.
#[inline]
fn measured_frame_bits<M: MessageSize + crate::wire::WireCodec>(wire: bool, m: &M) -> usize {
    if !wire {
        return 0;
    }
    crate::wire::debug_assert_estimate_covers(m);
    crate::wire::frame_bits(crate::wire::payload_len(m))
}

/// Runs one node's broadcast phase and computes its post-fault accounting row
/// (shared by the dense map, the sparse frontier loop, and the mailbox
/// shards). A crashed sender is treated exactly like a program-halted one:
/// it produces nothing; a quarantined byzantine sender likewise sends
/// nothing, but (unlike a crash) still receives and steps. `wire` enables
/// measured wire-bit accounting.
pub(crate) fn produce_outgoing<P: NodeProgram>(
    graph: &CsrGraph,
    faults: Option<FaultPlan>,
    round: usize,
    i: usize,
    wire: bool,
    cell: &mut NodeCell<P>,
) -> (Outgoing<P::Message>, SendAccount) {
    let sender = NodeId::new(i);
    if cell.program.halted()
        || faults.is_some_and(|f| f.crashed(round, sender) || f.quarantined(round, sender))
    {
        return (Outgoing::Silent, SendAccount::default());
    }
    let ctx = NodeContext::new(graph, sender, round);
    let out = cell.program.broadcast(&ctx);
    let mut acct = SendAccount::default();
    // An active byzantine spammer transmits every outgoing frame `spam` times;
    // the duplicates share the original's drop decision, so both the
    // delivered-copy totals and the drop counters scale by the factor
    // (invariant: messages + drops == wire copies × factor).
    let spam = faults.map_or(1, |f| f.spam_factor(round, sender));
    // Post-fault accounting evaluates the drop decision here and the delivery
    // phase evaluates it again per arc — a deliberate trade-off: the hash is a
    // handful of integer ops, and sharing it would need another arc-indexed
    // scratch array written under the parallel map. Fault-free runs and
    // crash-only plans (`link_faults == None`) skip both.
    let link_faults = faults.filter(FaultPlan::affects_links);
    match &out {
        Outgoing::Silent => {}
        Outgoing::Broadcast(m) => {
            let degree = graph.unweighted_degree(sender);
            let copies = match link_faults {
                None => degree * spam,
                Some(f) => {
                    let mut delivered = 0usize;
                    for &t in graph.neighbors(sender) {
                        match f.drop_cause(round, sender, t, 0) {
                            None => delivered += spam,
                            Some(cause) => acct.record_drops(cause, spam),
                        }
                    }
                    delivered
                }
            };
            if copies > 0 {
                let bits = m.size_bits();
                acct.messages = copies;
                acct.payload_bits = bits * copies;
                acct.wire_bits = measured_frame_bits(wire, m) * copies;
                acct.max_message_bits = bits;
            }
        }
        Outgoing::Multicast(m, targets) => {
            debug_assert!(
                targets.iter().all(|&t| graph.has_neighbor(sender, t)),
                "multicast target is not a neighbour of {sender}"
            );
            let copies = match link_faults {
                None => targets.len() * spam,
                Some(f) => {
                    let mut delivered = 0usize;
                    for &t in targets {
                        match f.drop_cause(round, sender, t, 0) {
                            None => delivered += spam,
                            Some(cause) => acct.record_drops(cause, spam),
                        }
                    }
                    delivered
                }
            };
            if copies > 0 {
                let bits = m.size_bits();
                acct.messages = copies;
                acct.payload_bits = bits * copies;
                acct.wire_bits = measured_frame_bits(wire, m) * copies;
                acct.max_message_bits = bits;
            }
        }
        Outgoing::Unicast(msgs) => {
            // The batch position is the per-message fault index: two distinct
            // messages to the same target in one round get independent drop
            // decisions (see `LossModel::drops`).
            for (idx, (target, m)) in msgs.iter().enumerate() {
                debug_assert!(
                    graph.has_neighbor(sender, *target),
                    "unicast target {target} is not a neighbour of {sender}"
                );
                match link_faults.and_then(|f| f.drop_cause(round, sender, *target, idx)) {
                    None => {
                        let bits = m.size_bits();
                        acct.messages += spam;
                        acct.payload_bits += bits * spam;
                        acct.wire_bits += measured_frame_bits(wire, m) * spam;
                        acct.max_message_bits = acct.max_message_bits.max(bits);
                    }
                    Some(cause) => acct.record_drops(cause, spam),
                }
            }
        }
    }
    (out, acct)
}

/// Fluent construction of a [`Network`]: one entry point selecting the
/// execution mode, fault plan, wire accounting, sharding, and mailbox
/// configuration (the accreted `Network::new` → `with_message_loss` →
/// `with_faults` chain it replaced has been removed).
///
/// ```
/// use dkc_distsim::{ExecutionMode, NetworkBuilder};
/// # use dkc_distsim::{NodeContext, NodeProgram, Delivery, Outgoing};
/// # use dkc_graph::WeightedGraph;
/// # struct Noop;
/// # impl NodeProgram for Noop {
/// #     type Message = ();
/// #     fn broadcast(&mut self, _: &NodeContext<'_>) -> Outgoing<()> { Outgoing::Silent }
/// #     fn receive(&mut self, _: &NodeContext<'_>, _: &[Delivery<()>]) -> bool { false }
/// # }
/// # let mut graph = WeightedGraph::new(2);
/// # graph.add_edge(dkc_graph::NodeId::new(0), dkc_graph::NodeId::new(1), 1.0);
/// let mut net = NetworkBuilder::new()
///     .mode(ExecutionMode::Mailbox)
///     .threads(4)
///     .build(&graph, |_ctx| Noop);
/// net.run(3);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NetworkBuilder {
    mode: ExecutionMode,
    faults: FaultPlan,
    threads: Option<usize>,
    mailbox_capacity: usize,
    max_frame_bytes: usize,
    wire_accounting: bool,
    checkpoint_every: usize,
    shards: usize,
    shard_seed: u64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder {
            mode: ExecutionMode::default(),
            faults: FaultPlan::none(),
            threads: None,
            mailbox_capacity: Self::DEFAULT_MAILBOX_CAPACITY,
            max_frame_bytes: Self::DEFAULT_MAX_FRAME_BYTES,
            wire_accounting: true,
            checkpoint_every: 0,
            shards: 0,
            shard_seed: 0,
        }
    }
}

impl NetworkBuilder {
    /// Default bounded capacity (frames) of each mailbox shard's channel.
    pub const DEFAULT_MAILBOX_CAPACITY: usize = 256;
    /// Default cap on a received frame's payload, in bytes.
    pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

    /// A builder with the defaults: [`ExecutionMode::Parallel`], no faults,
    /// wire accounting on, automatic thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the execution mode (defaults to [`ExecutionMode::Parallel`]).
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Installs a deterministic [`FaultPlan`] (replaces any previously
    /// configured plan; a trivial plan means fault-free execution).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Shorthand for [`NetworkBuilder::faults`] with a loss-only plan.
    pub fn message_loss(self, model: LossModel) -> Self {
        self.faults(FaultPlan::from_loss(model))
    }

    /// Shard-thread count for [`ExecutionMode::Mailbox`] (0 or unset =
    /// [`rayon::current_num_threads`]). The deterministic counters do not
    /// depend on this.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = (n > 0).then_some(n);
        self
    }

    /// Bounded capacity (frames) of each mailbox shard's channel; clamped to
    /// at least 1. Smaller capacities exercise backpressure, larger ones
    /// reduce sender stalls.
    pub fn mailbox_capacity(mut self, frames: usize) -> Self {
        self.mailbox_capacity = frames.max(1);
        self
    }

    /// Cap on a received frame's payload in bytes; longer frames are
    /// rejected on decode and attributed to the sender
    /// (see [`Network::decode_faults`]).
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Enables or disables the measured `wire_bits` counter for the lockstep
    /// executors (default on). The mailbox backend encodes every frame
    /// regardless; disabling only skips the counting serializer on the
    /// lockstep hot path (its `wire_bits` then reads 0).
    pub fn wire_accounting(mut self, enabled: bool) -> Self {
        self.wire_accounting = enabled;
        self
    }

    /// Checkpoint interval in rounds for [`Network::run_with_checkpoints`]
    /// (0 = never checkpoint, the default). The checkpoint destination and
    /// run preamble are configured per network via [`Network::checkpoint_to`]
    /// — keeping the interval here lets one builder stamp out many runs
    /// writing to different paths.
    pub fn checkpoint_every(mut self, rounds: usize) -> Self {
        self.checkpoint_every = rounds;
        self
    }

    /// Partitions the graph into `n` shards and forces
    /// [`ExecutionMode::Sharded`] (0 = unsharded, the default: the configured
    /// mode runs unchanged). Sharded execution requires a delta-driven
    /// program and composes with any fault plan, wire accounting, and
    /// checkpointing; it does not compose with [`ExecutionMode::Mailbox`]
    /// (the mailbox backend has its own thread-shard notion).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Seed of the deterministic hash-based node → shard assignment (see
    /// `dkc_graph::Partitioner`); only meaningful with
    /// [`NetworkBuilder::shards`] > 0.
    pub fn shard_seed(mut self, seed: u64) -> Self {
        self.shard_seed = seed;
        self
    }

    /// Builds a network over `graph`, instantiating one program per node via
    /// `factory` (which receives the node's local view at round 0).
    ///
    /// # Panics
    ///
    /// Panics if a sparse mode is configured for a program that does not set
    /// [`NodeProgram::DELTA_DRIVEN`].
    pub fn build<P, F>(self, graph: &WeightedGraph, factory: F) -> Network<P>
    where
        P: NodeProgram,
        F: FnMut(&NodeContext<'_>) -> P,
    {
        self.configure(Network::from_graph(graph, factory))
    }

    /// Builds a network from an existing CSR topology and explicit programs
    /// (one per node, in node order).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NetworkBuilder::build`], or if
    /// `programs` and `graph` disagree on the node count.
    pub fn build_from_parts<P: NodeProgram>(self, graph: CsrGraph, programs: Vec<P>) -> Network<P> {
        self.configure(Network::from_parts(graph, programs))
    }

    fn configure<P: NodeProgram>(self, mut net: Network<P>) -> Network<P> {
        let mode = if self.shards > 0 {
            assert!(
                self.mode != ExecutionMode::Mailbox,
                "sharded execution does not compose with the mailbox backend"
            );
            net.install_sharding(self.shards, self.shard_seed);
            ExecutionMode::Sharded
        } else {
            self.mode
        };
        let mut net = net.with_mode(mode);
        net.install_faults(self.faults);
        net.wire_accounting = self.wire_accounting;
        net.mailbox_threads = self.threads;
        net.mailbox_capacity = self.mailbox_capacity;
        net.max_frame_bytes = self.max_frame_bytes;
        net.checkpoint_every = self.checkpoint_every;
        net
    }
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph`, instantiating one program per node via
    /// `factory` (shared with [`NetworkBuilder::build`]).
    fn from_graph<F>(graph: &WeightedGraph, mut factory: F) -> Self
    where
        F: FnMut(&NodeContext<'_>) -> P,
    {
        let csr = CsrGraph::from_graph(graph);
        let programs = (0..csr.num_nodes())
            .map(|i| {
                let ctx = NodeContext::new(&csr, NodeId::new(i), 0);
                factory(&ctx)
            })
            .collect();
        Self::from_parts(csr, programs)
    }

    /// Builds a network from an existing CSR topology and explicit programs
    /// (one per node, in node order).
    pub fn from_parts(graph: CsrGraph, programs: Vec<P>) -> Self {
        assert_eq!(
            graph.num_nodes(),
            programs.len(),
            "one program per node required"
        );
        let cells = programs
            .into_iter()
            .map(|program| NodeCell {
                program,
                inbox: Vec::new(),
            })
            .collect();
        Network {
            graph,
            cells,
            round: 0,
            metrics: RunMetrics::new(),
            mode: ExecutionMode::default(),
            faults: None,
            crash_schedule: Vec::new(),
            byz_accusation_schedule: Vec::new(),
            quarantine_schedule: Vec::new(),
            wire_accounting: true,
            mailbox_threads: None,
            mailbox_capacity: NetworkBuilder::DEFAULT_MAILBOX_CAPACITY,
            max_frame_bytes: NetworkBuilder::DEFAULT_MAX_FRAME_BYTES,
            decode_faults: Vec::new(),
            outboxes: Vec::new(),
            step_results: Vec::new(),
            multicast_stamps: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            touch_list: Vec::new(),
            touched_stamp: Vec::new(),
            resend: Vec::new(),
            shard: None,
            checkpoint_every: 0,
            checkpoint_sink: None,
        }
    }

    /// Selects the execution mode (defaults to [`ExecutionMode::Parallel`]).
    ///
    /// # Panics
    ///
    /// Panics if a sparse mode is requested for a program that does not set
    /// [`NodeProgram::DELTA_DRIVEN`], or after rounds have already executed.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        if mode.is_sparse() {
            assert!(
                P::DELTA_DRIVEN,
                "sparse execution modes require a delta-driven program \
                 (see NodeProgram::DELTA_DRIVEN)"
            );
            assert_eq!(self.round, 0, "select the execution mode before running");
        }
        if mode == ExecutionMode::Sharded && self.shard.is_none() {
            // Sharded mode selected without an explicit partition: run as a
            // single shard (no cut, no boundary traffic).
            self.install_sharding(1, 0);
        }
        self.mode = mode;
        self
    }

    /// Installs the deterministic shard partition for
    /// [`ExecutionMode::Sharded`]: materializes the `Partitioner::shard_of`
    /// owner table and the per-pair boundary buffers.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or rounds have already executed.
    pub(crate) fn install_sharding(&mut self, num_shards: usize, seed: u64) {
        assert_eq!(self.round, 0, "install the shard partition before running");
        let part = Partitioner::new(num_shards, seed);
        let owner = (0..self.graph.num_nodes())
            .map(|i| part.shard_of(NodeId::new(i)) as u32)
            .collect();
        self.shard = Some(ShardState {
            num_shards,
            seed,
            owner,
            pair_bufs: (0..num_shards * num_shards).map(|_| Vec::new()).collect(),
            senders_scratch: Vec::new(),
        });
    }

    /// Installs a fault plan in place (shared with [`NetworkBuilder`]). A
    /// trivial plan uninstalls.
    ///
    /// # Panics
    ///
    /// Panics if rounds have already executed.
    pub(crate) fn install_faults(&mut self, plan: FaultPlan) {
        assert_eq!(self.round, 0, "install the fault plan before running");
        if plan.is_trivial() {
            self.faults = None;
            self.crash_schedule = Vec::new();
            self.byz_accusation_schedule = Vec::new();
            self.quarantine_schedule = Vec::new();
        } else {
            let n = self.cells.len();
            self.crash_schedule = plan.crash_schedule(n);
            self.byz_accusation_schedule = plan.byz_accusation_schedule(n);
            self.quarantine_schedule = plan.quarantine_schedule(n);
            self.faults = Some(plan);
        }
    }

    /// The number of nodes that have crash-stopped as of `round` under the
    /// installed plan.
    fn crashed_count(&self, round: usize) -> usize {
        self.crash_schedule
            .partition_point(|&r| (r as usize) <= round)
    }

    /// Cumulative byzantine accusation events through `round` under the
    /// installed plan (schedule-driven — see
    /// [`FaultPlan::byz_accusation_schedule`]).
    fn accusation_count(&self, round: usize) -> usize {
        self.byz_accusation_schedule
            .partition_point(|&r| (r as usize) <= round)
    }

    /// The number of nodes quarantined as of `round` under the installed
    /// plan.
    fn quarantined_count(&self, round: usize) -> usize {
        self.quarantine_schedule
            .partition_point(|&r| (r as usize) <= round)
    }

    /// The simulated topology.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The installed shard partition as `(num_shards, seed)`; `None` outside
    /// [`ExecutionMode::Sharded`].
    pub fn shard_config(&self) -> Option<(usize, u64)> {
        self.shard.as_ref().map(|s| (s.num_shards, s.seed))
    }

    /// Number of shards the executor runs (1 outside
    /// [`ExecutionMode::Sharded`]).
    pub fn num_shards(&self) -> usize {
        self.shard.as_ref().map_or(1, |s| s.num_shards)
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Accumulated run metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Per-sender counts of wire frames rejected by the decoder under
    /// [`ExecutionMode::Mailbox`] (tofn-style fault attribution: a truncated,
    /// oversized, or garbage frame is charged to the sending peer, never a
    /// panic). Empty if no frame was ever rejected; otherwise one count per
    /// node. Well-formed senders always report 0 here.
    pub fn decode_faults(&self) -> &[u32] {
        &self.decode_faults
    }

    /// The program of one node.
    pub fn program(&self, v: NodeId) -> &P {
        &self.cells[v.index()].program
    }

    /// Capacities of the executor's persistent scratch buffers (diagnostic;
    /// see the buffer-reuse acceptance test).
    pub fn buffer_stats(&self) -> ExecutorBufferStats {
        ExecutorBufferStats {
            outbox_capacity: self.outboxes.capacity(),
            inbox_capacity_total: self.cells.iter().map(|c| c.inbox.capacity()).sum(),
            changed_capacity: self.step_results.capacity(),
            multicast_stamp_slots: self.multicast_stamps.len(),
            frontier_capacity_total: self.frontier.capacity()
                + self.next_frontier.capacity()
                + self.touch_list.capacity()
                + self.resend.capacity(),
        }
    }

    /// Consumes the network, returning the final per-node programs and metrics.
    pub fn into_parts(self) -> (Vec<P>, RunMetrics) {
        let programs = self.cells.into_iter().map(|c| c.program).collect();
        (programs, self.metrics)
    }

    /// Executes one synchronous round (broadcast phase, then receive phase) and
    /// returns its statistics.
    pub fn run_round(&mut self) -> RoundStats {
        if self.mode == ExecutionMode::Mailbox {
            crate::mailbox::run_mailbox(self, 1, false);
            return *self.metrics.rounds().last().expect("round recorded");
        }
        // Wall-clock audit (dkc-lint D02 allowlist): this reading feeds only
        // RunMetrics::add_elapsed, i.e. wall_clock_ms / messages_per_sec —
        // never a deterministic counter (crates/bench/tests/wall_clock_isolation.rs).
        let started = Instant::now();
        self.round += 1;
        let stats = if self.mode.is_sparse() {
            self.run_round_sparse()
        } else {
            self.run_round_dense()
        };
        self.metrics.push(stats);
        self.metrics.add_elapsed(started.elapsed());
        stats
    }

    /// Dense activation: every non-halted, non-crashed node broadcasts and
    /// steps.
    fn run_round_dense(&mut self) -> RoundStats {
        let round = self.round;
        let graph = &self.graph;
        let faults = self.faults;
        let wire = self.wire_accounting;

        // Phase 1: every (non-halted) node produces its outgoing messages.
        // The accounting (post-fault, see `with_faults`) is computed in the
        // same map so no separate sequential pass over the outboxes is
        // needed afterwards.
        match self.mode {
            ExecutionMode::Parallel => self
                .cells
                .par_iter_mut()
                .enumerate()
                .map(|(i, cell)| produce_outgoing(graph, faults, round, i, wire, cell))
                .collect_into_vec(&mut self.outboxes),
            _ => {
                self.outboxes.clear();
                self.outboxes.reserve(self.cells.len());
                self.outboxes.extend(
                    self.cells
                        .iter_mut()
                        .enumerate()
                        .map(|(i, cell)| produce_outgoing(graph, faults, round, i, wire, cell)),
                );
            }
        }

        // Reduce the per-sender accounting rows (cheap: plain integers).
        let mut messages = 0usize;
        let mut payload_bits = 0usize;
        let mut wire_bits = 0usize;
        let mut max_message_bits = 0usize;
        let mut sending_nodes = 0usize;
        let mut dropped_loss = 0usize;
        let mut dropped_burst = 0usize;
        let mut dropped_partition = 0usize;
        let mut dropped_byzantine = 0usize;
        for (_, acct) in &self.outboxes {
            if acct.messages > 0 {
                sending_nodes += 1;
                messages += acct.messages;
                payload_bits += acct.payload_bits;
                wire_bits += acct.wire_bits;
                max_message_bits = max_message_bits.max(acct.max_message_bits);
            }
            dropped_loss += acct.dropped_loss;
            dropped_burst += acct.dropped_burst;
            dropped_partition += acct.dropped_partition;
            dropped_byzantine += acct.dropped_byzantine;
        }

        // Multicast scatter: each sender stamps its own CSR arc positions for
        // its targets (looked up in the sender's cache-resident neighbour-rank
        // map), so the receive phase resolves membership with one O(1) stamp
        // load per arc instead of scanning the sender's target list.
        let round_stamp = round as u64;
        let mut any_multicast = false;
        for (i, (out, _)) in self.outboxes.iter().enumerate() {
            if let Outgoing::Multicast(_, targets) = out {
                if targets.is_empty() {
                    continue;
                }
                if !any_multicast {
                    any_multicast = true;
                    if self.multicast_stamps.len() != graph.num_arcs() {
                        self.multicast_stamps = vec![0; graph.num_arcs()];
                    }
                }
                let sender = NodeId::new(i);
                let base = graph.arc_offset(sender);
                for &t in targets {
                    for q in graph.neighbor_positions(sender, t) {
                        self.multicast_stamps[base + q] = round_stamp;
                    }
                }
            }
        }

        // Phase 2: every (non-halted) node collects the messages addressed to
        // it from its neighbours' outboxes into its persistent inbox and
        // updates its state.
        // Delivery order guarantee (dense modes only): the inbox is ordered by
        // the receiver's neighbour-list order (one scan over
        // `graph.neighbors(v)`), which node programs may rely on to merge
        // messages with per-neighbour state in linear time.
        let outboxes = &self.outboxes;
        let stamps = &self.multicast_stamps;
        let link_faults = faults.filter(FaultPlan::affects_links);
        // Byzantine lie/equivocate corruption and spam duplication are
        // applied receiver-side here (the outbox holds the sender's true
        // message); the mailbox backend applies the same salts sender-side
        // when encoding frames — identical results because tampering is
        // salt-pure (see `crate::message::Tamper`).
        let byz = faults
            .and_then(|f| f.byzantine)
            .filter(|b| b.fraction > 0.0 && b.active(round));
        let receive_one = |i: usize, cell: &mut NodeCell<P>| -> StepResult {
            let v = NodeId::new(i);
            if cell.program.halted() || faults.is_some_and(|f| f.crashed(round, v)) {
                return StepResult::default();
            }
            let dropped = |from: NodeId, idx: usize| -> bool {
                link_faults.is_some_and(|f| f.drops(round, from, v, idx))
            };
            let arc_base = graph.arc_offset(v);
            cell.inbox.clear();
            for (q, &u) in graph.neighbors(v).iter().enumerate() {
                let (salt, copies) = match &byz {
                    None => (None, 1),
                    Some(b) => (b.tamper_salt(round, u, v), b.spam_factor(round, u)),
                };
                let deliver = |inbox: &mut Vec<Delivery<P::Message>>, msg: &P::Message| {
                    let msg = match salt {
                        Some(s) => msg.tamper(s),
                        None => msg.clone(),
                    };
                    for _ in 1..copies {
                        inbox.push(Delivery {
                            sender: u,
                            pos: q as u32,
                            msg: msg.clone(),
                        });
                    }
                    inbox.push(Delivery {
                        sender: u,
                        pos: q as u32,
                        msg,
                    });
                };
                match &outboxes[u.index()].0 {
                    Outgoing::Silent => {}
                    Outgoing::Broadcast(m) => {
                        if !dropped(u, 0) {
                            deliver(&mut cell.inbox, m);
                        }
                    }
                    Outgoing::Multicast(m, targets) => {
                        // The paired sender-side arc (u → v) carries the stamp.
                        // The emptiness check both short-circuits no-op
                        // multicasts and guarantees the stamp array was
                        // allocated (the scatter allocates on the first
                        // non-empty multicast).
                        if !targets.is_empty()
                            && stamps[graph.reverse_arc(arc_base + q)] == round_stamp
                            && !dropped(u, 0)
                        {
                            deliver(&mut cell.inbox, m);
                        }
                    }
                    Outgoing::Unicast(msgs) => {
                        // The batch position is the per-message fault index
                        // (mirrors the sender-side accounting).
                        for (idx, (target, m)) in msgs.iter().enumerate() {
                            if *target == v && !dropped(u, idx) {
                                deliver(&mut cell.inbox, m);
                            }
                        }
                    }
                }
            }
            let ctx = NodeContext::new(graph, v, round);
            let NodeCell { program, inbox } = cell;
            StepResult {
                ran: true,
                changed: program.receive(&ctx, inbox),
            }
        };

        match self.mode {
            ExecutionMode::Parallel => self
                .cells
                .par_iter_mut()
                .enumerate()
                .map(|(i, cell)| receive_one(i, cell))
                .collect_into_vec(&mut self.step_results),
            _ => {
                self.step_results.clear();
                self.step_results.reserve(self.cells.len());
                self.step_results.extend(
                    self.cells
                        .iter_mut()
                        .enumerate()
                        .map(|(i, cell)| receive_one(i, cell)),
                );
            }
        }
        let changed_nodes = self.step_results.iter().filter(|r| r.changed).count();
        let node_updates = self.step_results.iter().filter(|r| r.ran).count();

        RoundStats {
            round,
            messages,
            payload_bits,
            wire_bits,
            max_message_bits,
            sending_nodes,
            changed_nodes,
            node_updates,
            dropped_loss,
            dropped_burst,
            dropped_partition,
            dropped_byzantine,
            crashed_nodes: self.crashed_count(round),
            byzantine_accusations: self.accusation_count(round),
            quarantined_nodes: self.quarantined_count(round),
            boundary_bits: 0,
            boundary_nodes: 0,
        }
    }

    /// Sparse activation: only the frontier broadcasts, only touched nodes
    /// step. Valid for [`NodeProgram::DELTA_DRIVEN`] programs (enforced by
    /// [`Network::with_mode`]); result-identical to dense execution.
    fn run_round_sparse(&mut self) -> RoundStats {
        let round = self.round;
        let round_stamp = round as u64;
        let n = self.cells.len();

        if round == 1 {
            // Every node runs its first step, so the initial frontier is the
            // full (non-halted) node set.
            self.touched_stamp = vec![0; n];
            self.frontier.clear();
            self.frontier
                .extend((0..n as u32).filter(|&i| !self.cells[i as usize].program.halted()));
            if self.outboxes.len() != n {
                self.outboxes.clear();
                self.outboxes
                    .resize(n, (Outgoing::Silent, SendAccount::default()));
            }
        }

        // Byzantine lie/equivocate window boundaries re-activate the liars:
        // a dense run re-broadcasts every round, so receivers hear the
        // tampered value at `first_round` and the restored true value at
        // `last_round + 1` even if the liar's state never changed. Injecting
        // the (non-crashed, non-halted) tampering nodes into the frontier at
        // exactly those two rounds reproduces both deliveries; mute needs no
        // injection (its drops keep the sender in the resend list and its
        // values are never tampered) and spam duplicates are idempotent.
        if let Some(byz) = self.faults.and_then(|f| f.byzantine) {
            let tampering = Behavior::Lie.bit() | Behavior::Equivocate.bit();
            if byz.fraction > 0.0
                && byz.behaviors & tampering != 0
                && (round == byz.first_round || round == byz.last_round + 1)
            {
                let faults = self.faults;
                for i in 0..n {
                    let v = NodeId::new(i);
                    if !matches!(
                        byz.behavior_of(v),
                        Some(Behavior::Lie) | Some(Behavior::Equivocate)
                    ) {
                        continue;
                    }
                    if self.cells[i].program.halted() || faults.is_some_and(|f| f.crashed(round, v))
                    {
                        continue;
                    }
                    self.frontier.push(i as u32);
                }
                self.frontier.sort_unstable();
                self.frontier.dedup();
            }
        }

        if self.frontier.is_empty() {
            // Quiescent: the round is a no-op (and costs O(1)). The
            // cumulative schedule-driven counters still report, matching
            // dense rounds.
            return RoundStats {
                round,
                crashed_nodes: self.crashed_count(round),
                byzantine_accusations: self.accusation_count(round),
                quarantined_nodes: self.quarantined_count(round),
                ..RoundStats::default()
            };
        }

        // Phase 1: frontier nodes produce their outgoing messages, with the
        // same post-fault accounting as the dense path. A sender with dropped
        // copies is queued for re-send so receivers hear its current value at
        // exactly the rounds a dense run would have delivered it; a crashed
        // frontier node produces nothing and silently leaves the frontier
        // (it can never report a change again).
        let mut messages = 0usize;
        let mut payload_bits = 0usize;
        let mut wire_bits = 0usize;
        let mut max_message_bits = 0usize;
        let mut sending_nodes = 0usize;
        let mut dropped_loss = 0usize;
        let mut dropped_burst = 0usize;
        let mut dropped_partition = 0usize;
        let mut dropped_byzantine = 0usize;
        let mut boundary_bits = 0usize;
        let mut boundary_nodes = 0usize;
        self.resend.clear();
        let wire = self.wire_accounting;
        for idx in 0..self.frontier.len() {
            let u = self.frontier[idx] as usize;
            let row =
                produce_outgoing(&self.graph, self.faults, round, u, wire, &mut self.cells[u]);
            let acct = row.1;
            self.outboxes[u] = row;
            if acct.messages > 0 {
                sending_nodes += 1;
                messages += acct.messages;
                payload_bits += acct.payload_bits;
                wire_bits += acct.wire_bits;
                max_message_bits = max_message_bits.max(acct.max_message_bits);
            }
            dropped_loss += acct.dropped_loss;
            dropped_burst += acct.dropped_burst;
            dropped_partition += acct.dropped_partition;
            dropped_byzantine += acct.dropped_byzantine;
            if acct.any_dropped() {
                self.resend.push(u as u32);
            }
        }

        // Phase 2: sender-side scatter into the receivers' inboxes. Each
        // delivery translates the sender-side arc to the receiver-local
        // position through `reverse_arc`, so receivers never rescan their
        // adjacency lists. The first delivery of the round to a node clears
        // its (stale) inbox and registers it in the touch list.
        {
            let Network {
                graph,
                cells,
                outboxes,
                multicast_stamps,
                touch_list,
                touched_stamp,
                frontier,
                faults,
                shard,
                ..
            } = self;
            touch_list.clear();
            let faults = *faults;
            let link_faults = faults.filter(FaultPlan::affects_links);
            // Same receiver-observable byzantine corruption as the dense
            // path, applied at the sender-side scatter point.
            let byz = faults
                .and_then(|f| f.byzantine)
                .filter(|b| b.fraction > 0.0 && b.active(round));
            // A crashed (or halted) node is never touched: it does not step,
            // mirroring the dense receive skip, so it stays out of the
            // frontier bookkeeping entirely.
            let mut touch = |cells: &mut Vec<NodeCell<P>>, v: NodeId| -> bool {
                let cell = &mut cells[v.index()];
                if cell.program.halted() || faults.is_some_and(|f| f.crashed(round, v)) {
                    return false;
                }
                if touched_stamp[v.index()] != round_stamp {
                    touched_stamp[v.index()] = round_stamp;
                    cell.inbox.clear();
                    touch_list.push(v.0);
                }
                true
            };
            // Sharded execution reroutes cross-shard deliveries through the
            // per-pair boundary buffers instead of the receiver's inbox.
            // Every sender-side decision (drop cause, multicast stamp dedup,
            // tamper salt, spam factor) is made first and identically, so
            // the phase-1 per-copy accounting and the eventually delivered
            // messages are byte-identical to unsharded sparse execution.
            let mut shard_parts = shard
                .as_mut()
                .filter(|s| s.num_shards > 1)
                .map(|s| (s.owner.as_slice(), &mut s.pair_bufs, s.num_shards));
            for &uu in frontier.iter() {
                let u = uu as usize;
                let sender = NodeId::new(u);
                let base = graph.arc_offset(sender);
                let dropped = |to: NodeId, idx: usize| -> bool {
                    link_faults.is_some_and(|f| f.drops(round, sender, to, idx))
                };
                let spam = byz.as_ref().map_or(1, |b| b.spam_factor(round, sender));
                // Deliver the copies on the arc at sender-local position `q`
                // (one copy, or `spam` identical copies for an active
                // spammer), applying the sender's per-receiver tamper salt.
                let deliver = |cells: &mut Vec<NodeCell<P>>, q: usize, msg: &P::Message| {
                    let v = graph.neighbors(sender)[q];
                    let pos = (graph.reverse_arc(base + q) - graph.arc_offset(v)) as u32;
                    let msg = match byz.as_ref().and_then(|b| b.tamper_salt(round, sender, v)) {
                        Some(s) => msg.tamper(s),
                        None => msg.clone(),
                    };
                    let inbox = &mut cells[v.index()].inbox;
                    for _ in 1..spam {
                        inbox.push(Delivery {
                            sender,
                            pos,
                            msg: msg.clone(),
                        });
                    }
                    inbox.push(Delivery { sender, pos, msg });
                };
                // Cross-shard counterpart of `deliver`: buffer the copies on
                // arc `q` for the boundary exchange instead of pushing them
                // into the receiver's inbox. Same receiver-local position,
                // same sender-side tamper salt, same spam duplication — only
                // the transport differs.
                let ship = |bufs: &mut Vec<Vec<BoundaryRecord<P::Message>>>,
                            num_shards: usize,
                            su: u32,
                            sv: u32,
                            q: usize,
                            msg: &P::Message| {
                    let v = graph.neighbors(sender)[q];
                    let pos = (graph.reverse_arc(base + q) - graph.arc_offset(v)) as u32;
                    let msg = match byz.as_ref().and_then(|b| b.tamper_salt(round, sender, v)) {
                        Some(s) => msg.tamper(s),
                        None => msg.clone(),
                    };
                    let buf = &mut bufs[su as usize * num_shards + sv as usize];
                    for _ in 1..spam {
                        buf.push(BoundaryRecord {
                            sender: sender.0,
                            receiver: v.0,
                            pos,
                            msg: msg.clone(),
                        });
                    }
                    buf.push(BoundaryRecord {
                        sender: sender.0,
                        receiver: v.0,
                        pos,
                        msg,
                    });
                };
                match &outboxes[u].0 {
                    Outgoing::Silent => {}
                    Outgoing::Broadcast(m) => {
                        for (q, &v) in graph.neighbors(sender).iter().enumerate() {
                            if dropped(v, 0) {
                                continue;
                            }
                            if let Some((owner, bufs, s)) = shard_parts.as_mut() {
                                let (su, sv) = (owner[u], owner[v.index()]);
                                if su != sv {
                                    ship(bufs, *s, su, sv, q, m);
                                    continue;
                                }
                            }
                            if touch(cells, v) {
                                deliver(cells, q, m);
                            }
                        }
                    }
                    Outgoing::Multicast(m, targets) => {
                        if targets.is_empty() {
                            continue;
                        }
                        if multicast_stamps.len() != graph.num_arcs() {
                            *multicast_stamps = vec![0; graph.num_arcs()];
                        }
                        for &t in targets {
                            if dropped(t, 0) {
                                continue;
                            }
                            for q in graph.neighbor_positions(sender, t) {
                                // The stamp deduplicates repeated target
                                // entries (dense delivery is idempotent in
                                // them); parallel arcs have distinct
                                // positions and each gets its copy.
                                if multicast_stamps[base + q] == round_stamp {
                                    continue;
                                }
                                multicast_stamps[base + q] = round_stamp;
                                if let Some((owner, bufs, s)) = shard_parts.as_mut() {
                                    let (su, sv) = (owner[u], owner[t.index()]);
                                    if su != sv {
                                        ship(bufs, *s, su, sv, q, m);
                                        continue;
                                    }
                                }
                                if touch(cells, t) {
                                    deliver(cells, q, m);
                                }
                            }
                        }
                    }
                    Outgoing::Unicast(msgs) => {
                        for (idx, (t, m)) in msgs.iter().enumerate() {
                            if dropped(*t, idx) {
                                continue;
                            }
                            // Dense delivery hands a unicast to every parallel
                            // arc towards the target; mirror that here.
                            for q in graph.neighbor_positions(sender, *t) {
                                if let Some((owner, bufs, s)) = shard_parts.as_mut() {
                                    let (su, sv) = (owner[u], owner[t.index()]);
                                    if su != sv {
                                        ship(bufs, *s, su, sv, q, m);
                                        continue;
                                    }
                                }
                                if touch(cells, *t) {
                                    deliver(cells, q, m);
                                }
                            }
                        }
                    }
                }
            }
            if round == 1 {
                // Every node executes its first step even with an empty inbox
                // (initialization transitions, e.g. ∞ → degree, happen here).
                for i in 0..n {
                    touch(cells, NodeId::new(i));
                }
            }
            // Boundary exchange: each nonempty ordered shard pair ships its
            // buffered records as one length-prefixed `BoundaryDelta` frame,
            // which is decoded defensively and structurally validated exactly
            // as a remote peer's frame would be before delivery. Cross-shard
            // copies land after all local ones in inbox order — harmless,
            // because the delta-driven contract merges by `Delivery::pos`,
            // not inbox order. Frame bytes are charged to `boundary_bits`;
            // the per-copy `wire_bits` were already counted in phase 1,
            // identically to unsharded execution.
            if let Some(st) = shard.as_mut().filter(|s| s.num_shards > 1) {
                let s = st.num_shards;
                st.senders_scratch.clear();
                for src in 0..s {
                    for dst in 0..s {
                        if src == dst || st.pair_bufs[src * s + dst].is_empty() {
                            continue;
                        }
                        let delta = BoundaryDelta {
                            src_shard: src as u32,
                            dst_shard: dst as u32,
                            round: round as u64,
                            records: std::mem::take(&mut st.pair_bufs[src * s + dst]),
                        };
                        let frame = crate::wire::encode_frame(&delta);
                        boundary_bits += 8 * frame.len();
                        // A boundary frame aggregates a whole cut's frontier,
                        // so it is not subject to the per-node-message frame
                        // cap; both checks are infallible here because the
                        // frame was encoded in this very loop.
                        let decoded: BoundaryDelta<P::Message> =
                            crate::wire::decode_frame(&frame, usize::MAX)
                                .expect("self-encoded boundary frame decodes");
                        decoded
                            .validate(src as u32, dst as u32, round as u64, graph, &st.owner)
                            .expect("self-built boundary frame validates");
                        for rec in decoded.records {
                            st.senders_scratch.push(rec.sender);
                            let v = NodeId(rec.receiver);
                            if touch(cells, v) {
                                cells[v.index()].inbox.push(Delivery {
                                    sender: NodeId(rec.sender),
                                    pos: rec.pos,
                                    msg: rec.msg,
                                });
                            }
                        }
                        // Hand the drained buffer's capacity back for reuse.
                        let mut records = delta.records;
                        records.clear();
                        st.pair_bufs[src * s + dst] = records;
                    }
                }
                st.senders_scratch.sort_unstable();
                st.senders_scratch.dedup();
                boundary_nodes = st.senders_scratch.len();
            }
        }
        self.touch_list.sort_unstable();

        // Phase 3: touched nodes run their step; nodes that changed (plus
        // re-senders) form the next frontier.
        let node_updates = self.touch_list.len();
        let mut changed_nodes = 0usize;
        self.next_frontier.clear();
        match self.mode {
            ExecutionMode::SparseParallel => {
                let graph = &self.graph;
                let stamps = &self.touched_stamp;
                self.cells
                    .par_iter_mut()
                    .enumerate()
                    .map(|(i, cell)| {
                        if stamps[i] != round_stamp {
                            return StepResult::default();
                        }
                        let ctx = NodeContext::new(graph, NodeId::new(i), round);
                        let NodeCell { program, inbox } = cell;
                        StepResult {
                            ran: true,
                            changed: program.receive(&ctx, inbox),
                        }
                    })
                    .collect_into_vec(&mut self.step_results);
                for &v in &self.touch_list {
                    if self.step_results[v as usize].changed {
                        changed_nodes += 1;
                        self.next_frontier.push(v);
                    }
                }
            }
            _ => {
                for idx in 0..self.touch_list.len() {
                    let v = self.touch_list[idx] as usize;
                    let ctx = NodeContext::new(&self.graph, NodeId::new(v), round);
                    let NodeCell { program, inbox } = &mut self.cells[v];
                    if program.receive(&ctx, inbox) {
                        changed_nodes += 1;
                        self.next_frontier.push(v as u32);
                    }
                }
            }
        }
        self.next_frontier.extend_from_slice(&self.resend);
        self.next_frontier.sort_unstable();
        self.next_frontier.dedup();
        std::mem::swap(&mut self.frontier, &mut self.next_frontier);

        RoundStats {
            round,
            messages,
            payload_bits,
            wire_bits,
            max_message_bits,
            sending_nodes,
            changed_nodes,
            node_updates,
            dropped_loss,
            dropped_burst,
            dropped_partition,
            dropped_byzantine,
            crashed_nodes: self.crashed_count(round),
            byzantine_accusations: self.accusation_count(round),
            quarantined_nodes: self.quarantined_count(round),
            boundary_bits,
            boundary_nodes,
        }
    }

    /// Runs exactly `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        if self.mode == ExecutionMode::Mailbox {
            crate::mailbox::run_mailbox(self, rounds, false);
            return;
        }
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs until a round in which no node's state changed (quiescence), or
    /// until `max_rounds` additional rounds have been executed. Returns the
    /// number of rounds executed by this call.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> usize {
        if self.mode == ExecutionMode::Mailbox {
            return crate::mailbox::run_mailbox(self, max_rounds, true);
        }
        for executed in 1..=max_rounds {
            let stats = self.run_round();
            if stats.changed_nodes == 0 {
                return executed;
            }
        }
        max_rounds
    }

    /// Configures the checkpoint destination for
    /// [`Network::run_with_checkpoints`]: the file path the snapshots are
    /// (atomically) written to, and the embedder-defined preamble stored
    /// ahead of the executor state (run parameters, graph identity, ...; see
    /// [`crate::checkpoint`]).
    pub fn checkpoint_to(&mut self, path: impl Into<PathBuf>, preamble: Vec<u8>) {
        self.checkpoint_sink = Some((path.into(), preamble));
    }
}

/// Checkpoint/restore of mid-run executor state (see [`crate::checkpoint`]
/// for the container format). Available for programs that implement
/// [`SnapshotState`].
impl<P: NodeProgram + SnapshotState> Network<P> {
    /// Serializes the complete resumable state of this network — round
    /// counter, sparse frontier, metrics, decode-fault attribution, the
    /// installed fault plan (its splitmix64 decisions are pure functions of
    /// the parameters and round, so parameters + round counter *are* the
    /// full fault state), and every node program's [`SnapshotState`] payload.
    pub fn save_state(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut w = WireWriter::new();
        let n = self.cells.len();
        (n as u64).serialize(&mut w)?;
        (self.graph.num_arcs() as u64).serialize(&mut w)?;
        self.faults.unwrap_or_default().serialize(&mut w)?;
        self.mode.is_sparse().serialize(&mut w)?;
        (self.round as u64).serialize(&mut w)?;
        self.frontier.serialize(&mut w)?;
        self.decode_faults.serialize(&mut w)?;
        (self.metrics.elapsed().as_nanos() as u64).serialize(&mut w)?;
        self.metrics.rounds().serialize(&mut w)?;
        for cell in &self.cells {
            cell.program.save_state(&mut w)?;
        }
        Ok(w.into_bytes())
    }

    /// Restores executor state saved by [`Network::save_state`] into this
    /// freshly built network (same graph, same fault plan, same mode family —
    /// all validated). On success the network continues exactly where the
    /// checkpointed run left off, byte-identical on every deterministic
    /// counter; on error nothing observable has run, but node-program state
    /// may be partially overwritten — discard the network.
    ///
    /// # Panics
    ///
    /// Panics if rounds have already executed on this network.
    pub fn restore_state(&mut self, state: &[u8]) -> Result<(), CheckpointError> {
        assert_eq!(self.round, 0, "restore requires a freshly built network");
        let mismatch = |msg: String| Err(CheckpointError::Mismatch(msg));
        let n = self.cells.len();
        let mut r = WireReader::new(state);
        let saved_n = r.read_u64()? as usize;
        if saved_n != n {
            return mismatch(format!("checkpoint has {saved_n} nodes, this run has {n}"));
        }
        let saved_arcs = r.read_u64()? as usize;
        if saved_arcs != self.graph.num_arcs() {
            return mismatch(format!(
                "checkpoint graph has {saved_arcs} arcs, this run has {}",
                self.graph.num_arcs()
            ));
        }
        let plan = FaultPlan::decode(&mut r)?;
        checkpoint::validate_plan(&plan)?;
        if plan != self.faults.unwrap_or_default() {
            return mismatch("fault plan differs from the checkpointed run".to_string());
        }
        let sparse = r.read_bool()?;
        if sparse != self.mode.is_sparse() {
            return mismatch(format!(
                "checkpoint was written under a {} mode, resuming under {:?}",
                if sparse { "sparse" } else { "dense" },
                self.mode
            ));
        }
        let round = r.read_u64()? as usize;
        let frontier = Vec::<u32>::decode(&mut r)?;
        if !frontier.windows(2).all(|w| w[0] < w[1])
            || frontier.last().is_some_and(|&v| v as usize >= n)
        {
            return mismatch("frontier is not a strictly ascending node list".to_string());
        }
        let decode_faults = Vec::<u32>::decode(&mut r)?;
        if !decode_faults.is_empty() && decode_faults.len() != n {
            return mismatch("decode-fault attribution has the wrong node count".to_string());
        }
        let elapsed = Duration::from_nanos(r.read_u64()?);
        let rounds = Vec::<RoundStats>::decode(&mut r)?;
        if rounds.len() != round {
            return mismatch(format!(
                "round counter {round} disagrees with {} recorded rounds",
                rounds.len()
            ));
        }
        if rounds.iter().enumerate().any(|(i, s)| s.round != i + 1) {
            return mismatch("recorded round numbers are not 1..=rounds".to_string());
        }
        for cell in &mut self.cells {
            cell.program.load_state(&mut r)?;
        }
        if r.remaining() > 0 {
            return Err(CheckpointError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        self.round = round;
        self.metrics = RunMetrics::from_parts(rounds, elapsed);
        self.frontier = frontier;
        self.decode_faults = decode_faults;
        if self.mode.is_sparse() && round > 0 {
            // A resumed sparse run never executes the round-1 initialization
            // branch, so size its lazily allocated state here. Freshly zeroed
            // stamp arrays are safe: stamps compare against the (nonzero)
            // current round.
            self.touched_stamp = vec![0; n];
            if self.outboxes.len() != n {
                self.outboxes.clear();
                self.outboxes
                    .resize(n, (Outgoing::Silent, SendAccount::default()));
            }
        }
        Ok(())
    }

    /// Writes a complete checkpoint image for the current state to `path`
    /// (atomically: temp file + rename, so a kill mid-write can never leave a
    /// truncated checkpoint), with `preamble` as the embedder section.
    pub fn write_checkpoint(&self, path: &Path, preamble: &[u8]) -> Result<(), CheckpointError> {
        let state = self.save_state()?;
        let image = checkpoint::encode_checkpoint(preamble, &state);
        checkpoint::write_checkpoint_atomic(path, &image)
    }

    /// Runs exactly `rounds` rounds like [`Network::run`], writing a
    /// checkpoint (see [`Network::checkpoint_to`]) every
    /// [`NetworkBuilder::checkpoint_every`] rounds — counted in *absolute*
    /// round numbers, so a resumed run checkpoints at the same boundaries as
    /// an uninterrupted one. With no interval or no sink configured this is
    /// plain [`Network::run`]. The mailbox executor runs in chunks between
    /// checkpoint boundaries; its shard threads are quiesced at every
    /// boundary, so the snapshot observes a plain synchronous barrier.
    pub fn run_with_checkpoints(&mut self, rounds: usize) -> Result<(), CheckpointError> {
        let every = self.checkpoint_every;
        if every == 0 || self.checkpoint_sink.is_none() {
            self.run(rounds);
            return Ok(());
        }
        let target = self.round + rounds;
        while self.round < target {
            let next_boundary = (self.round / every + 1) * every;
            let stop = next_boundary.min(target);
            let step = stop - self.round;
            if self.mode == ExecutionMode::Mailbox {
                crate::mailbox::run_mailbox(self, step, false);
            } else {
                for _ in 0..step {
                    self.run_round();
                }
            }
            if self.round.is_multiple_of(every) {
                let (path, preamble) = self.checkpoint_sink.as_ref().expect("sink checked");
                let state = self.save_state()?;
                let image = checkpoint::encode_checkpoint(preamble, &state);
                checkpoint::write_checkpoint_atomic(path, &image)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::generators::{complete_graph, path_graph};

    const ALL_MODES: [ExecutionMode; 6] = [
        ExecutionMode::Sequential,
        ExecutionMode::Parallel,
        ExecutionMode::SparseSequential,
        ExecutionMode::SparseParallel,
        ExecutionMode::Mailbox,
        // Without an explicit shard count this auto-installs a single shard,
        // so every counter (including the boundary pair) matches the other
        // modes exactly.
        ExecutionMode::Sharded,
    ];

    /// Toy protocol: every node repeatedly broadcasts the smallest node id it
    /// has heard of. Converges to the global minimum in (eccentricity of the
    /// minimum) rounds — a classic diameter-dependent protocol. Delta-driven:
    /// the broadcast is a pure function of `best`, and the min-merge is
    /// idempotent and order-insensitive.
    struct MinIdFlood {
        best: u32,
    }

    impl NodeProgram for MinIdFlood {
        type Message = u32;

        const DELTA_DRIVEN: bool = true;

        fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<u32> {
            Outgoing::Broadcast(self.best)
        }

        fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[Delivery<u32>]) -> bool {
            let before = self.best;
            for d in inbox {
                self.best = self.best.min(d.msg);
            }
            self.best != before
        }
    }

    fn min_id_network(g: &WeightedGraph, mode: ExecutionMode) -> Network<MinIdFlood> {
        min_id_faulty(g, mode, FaultPlan::none())
    }

    fn min_id_faulty(
        g: &WeightedGraph,
        mode: ExecutionMode,
        plan: FaultPlan,
    ) -> Network<MinIdFlood> {
        NetworkBuilder::new()
            .mode(mode)
            .faults(plan)
            .build(g, |ctx| MinIdFlood { best: ctx.node().0 })
    }

    use dkc_graph::WeightedGraph;

    #[test]
    fn flood_takes_diameter_rounds_on_a_path() {
        let g = path_graph(10);
        for mode in ALL_MODES {
            let mut net = min_id_network(&g, mode);
            // After k rounds, node k knows id 0 but node k+1 does not.
            net.run(5);
            assert_eq!(net.program(NodeId(5)).best, 0, "{mode:?}");
            assert_eq!(net.program(NodeId(6)).best, 1, "{mode:?}");
            net.run(4);
            for v in net.graph().nodes() {
                assert_eq!(net.program(v).best, 0, "node {v} not converged ({mode:?})");
            }
        }
    }

    #[test]
    fn all_modes_agree() {
        let g = complete_graph(20);
        let mut reference = min_id_network(&g, ExecutionMode::Sequential);
        reference.run(3);
        for mode in &ALL_MODES[1..] {
            let mut net = min_id_network(&g, *mode);
            net.run(3);
            for v in g.nodes() {
                assert_eq!(reference.program(v).best, net.program(v).best, "{mode:?}");
            }
        }
        // The two dense modes and the two sparse modes agree exactly on
        // counters as well.
        let mut par = min_id_network(&g, ExecutionMode::Parallel);
        par.run(3);
        assert_eq!(
            reference.metrics().total_messages(),
            par.metrics().total_messages()
        );
        let mut ss = min_id_network(&g, ExecutionMode::SparseSequential);
        let mut sp = min_id_network(&g, ExecutionMode::SparseParallel);
        ss.run(3);
        sp.run(3);
        assert_eq!(ss.metrics().rounds(), sp.metrics().rounds());
    }

    #[test]
    fn sparse_skips_redundant_work() {
        let g = path_graph(32);
        let rounds = 200; // well past convergence: the tail is free for sparse
        let mut dense = min_id_network(&g, ExecutionMode::Sequential);
        let mut sparse = min_id_network(&g, ExecutionMode::SparseSequential);
        dense.run(rounds);
        sparse.run(rounds);
        for v in g.nodes() {
            assert_eq!(dense.program(v).best, sparse.program(v).best);
        }
        let d = dense.metrics();
        let s = sparse.metrics();
        assert_eq!(d.num_rounds(), s.num_rounds());
        assert!(
            s.total_node_updates() < d.total_node_updates() / 4,
            "sparse executed {} steps vs dense {}",
            s.total_node_updates(),
            d.total_node_updates()
        );
        assert!(s.total_messages() < d.total_messages() / 4);
        // Dense runs every node every round.
        assert_eq!(d.total_node_updates(), 32 * rounds);
    }

    #[test]
    fn sparse_matches_dense_under_loss() {
        let g = path_graph(16);
        for seed in [1u64, 7, 99] {
            let model = LossModel::new(0.4, seed);
            let plan = FaultPlan::from_loss(model);
            let mut dense = min_id_faulty(&g, ExecutionMode::Sequential, plan);
            let mut sparse = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
            dense.run(40);
            sparse.run(40);
            for v in g.nodes() {
                assert_eq!(
                    dense.program(v).best,
                    sparse.program(v).best,
                    "seed {seed}, node {v}"
                );
            }
        }
    }

    #[test]
    fn quiescence_detection() {
        let g = path_graph(8);
        for mode in ALL_MODES {
            let mut net = min_id_network(&g, mode);
            let rounds = net.run_until_quiescent(100);
            // 7 rounds to converge + 1 quiescent round to detect it.
            assert_eq!(rounds, 8, "{mode:?}");
            for v in net.graph().nodes() {
                assert_eq!(net.program(v).best, 0);
            }
        }
    }

    #[test]
    fn quiescent_sparse_rounds_are_free() {
        let g = path_graph(6);
        let mut net = min_id_network(&g, ExecutionMode::SparseSequential);
        net.run(50);
        let trailing = &net.metrics().rounds()[10..];
        assert!(trailing
            .iter()
            .all(|r| r.messages == 0 && r.node_updates == 0));
    }

    #[test]
    fn message_accounting_counts_per_edge() {
        let g = complete_graph(5);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        let stats = net.run_round();
        // Every node broadcasts to 4 neighbours: 20 messages of 32 bits.
        assert_eq!(stats.messages, 20);
        assert_eq!(stats.payload_bits, 20 * 32);
        assert_eq!(stats.max_message_bits, 32);
        assert_eq!(stats.sending_nodes, 5);
        assert_eq!(stats.node_updates, 5);
    }

    /// A protocol with explicit halting: each node sends one message then halts.
    struct OneShot {
        sent: bool,
        received: usize,
    }

    impl NodeProgram for OneShot {
        type Message = ();

        fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<()> {
            if self.sent {
                Outgoing::Silent
            } else {
                self.sent = true;
                Outgoing::Broadcast(())
            }
        }

        fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[Delivery<()>]) -> bool {
            self.received += inbox.len();
            !inbox.is_empty()
        }

        fn halted(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn halted_nodes_do_not_participate() {
        let g = complete_graph(4);
        for mode in [
            ExecutionMode::Sequential,
            ExecutionMode::Parallel,
            ExecutionMode::Mailbox,
        ] {
            let mut net = NetworkBuilder::new().mode(mode).build(&g, |_| OneShot {
                sent: false,
                received: 0,
            });
            let s1 = net.run_round();
            assert_eq!(s1.messages, 12);
            // Everyone halted after sending; nothing is delivered in round 1's
            // receive phase? No: messages are delivered in the same round they are
            // sent, but `halted()` became true after the broadcast phase, so the
            // receive phase is skipped for everyone and nothing is counted.
            assert_eq!(s1.node_updates, 0, "{mode:?}");
            let s2 = net.run_round();
            assert_eq!(s2.messages, 0, "{mode:?}");
            assert_eq!(s2.changed_nodes, 0, "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "delta-driven")]
    fn sparse_mode_requires_delta_driven_programs() {
        let g = complete_graph(3);
        let _ = NetworkBuilder::new()
            .mode(ExecutionMode::SparseSequential)
            .build(&g, |_| OneShot {
                sent: false,
                received: 0,
            });
    }

    #[test]
    fn unicast_and_multicast_delivery() {
        struct Directed;
        impl NodeProgram for Directed {
            type Message = u64;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u64> {
                // Node 0 unicasts 7 to node 1 only; others multicast 9 to their
                // first neighbour.
                if ctx.node() == NodeId(0) {
                    Outgoing::Unicast(vec![(NodeId(1), 7)])
                } else {
                    let first = ctx.neighbors()[0];
                    Outgoing::Multicast(9, vec![first])
                }
            }
            fn receive(&mut self, ctx: &NodeContext<'_>, inbox: &[Delivery<u64>]) -> bool {
                if ctx.node() == NodeId(1) {
                    assert!(inbox.iter().any(|d| d.sender == NodeId(0) && d.msg == 7));
                    // Delivered positions index the receiver's neighbour list.
                    for d in inbox {
                        assert_eq!(ctx.neighbors()[d.pos as usize], d.sender);
                    }
                }
                if ctx.node() == NodeId(2) {
                    // Node 2's message from node 0 must NOT be delivered
                    // (node 0 unicast only to node 1).
                    assert!(!inbox.iter().any(|d| d.sender == NodeId(0)));
                }
                false
            }
        }
        let g = complete_graph(3);
        for mode in [ExecutionMode::Sequential, ExecutionMode::Mailbox] {
            let mut net = NetworkBuilder::new().mode(mode).build(&g, |_| Directed);
            let stats = net.run_round();
            // node0: 1 unicast; node1: 1 multicast; node2: 1 multicast.
            assert_eq!(stats.messages, 3, "{mode:?}");
            assert_eq!(stats.max_message_bits, 64, "{mode:?}");
        }
    }

    /// Every node multicasts to a rotating subset of its neighbours — keeps
    /// the multicast stamp path busy across rounds.
    struct RotatingMulticast {
        heard: Vec<(u32, u32)>,
    }

    impl NodeProgram for RotatingMulticast {
        type Message = u32;

        fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u32> {
            let nbrs = ctx.neighbors();
            let take = (ctx.round() % (nbrs.len() + 1)).max(1);
            let start = (ctx.node().index() + ctx.round()) % nbrs.len();
            let targets: Vec<NodeId> = (0..take).map(|k| nbrs[(start + k) % nbrs.len()]).collect();
            Outgoing::Multicast(ctx.node().0, targets)
        }

        fn receive(&mut self, ctx: &NodeContext<'_>, inbox: &[Delivery<u32>]) -> bool {
            for d in inbox {
                self.heard
                    .push((d.sender.0, d.msg.wrapping_add(ctx.round() as u32)));
            }
            !inbox.is_empty()
        }
    }

    #[test]
    fn multicast_modes_agree_on_rotating_subsets() {
        let g = complete_graph(9);
        let build = |mode| {
            NetworkBuilder::new()
                .mode(mode)
                .build(&g, |_| RotatingMulticast { heard: vec![] })
        };
        let mut seq = build(ExecutionMode::Sequential);
        let mut par = build(ExecutionMode::Parallel);
        let mut mb = build(ExecutionMode::Mailbox);
        seq.run(6);
        par.run(6);
        mb.run(6);
        for v in g.nodes() {
            assert_eq!(seq.program(v).heard, par.program(v).heard);
            // The mailbox inbox order (stable sort by arc position over
            // per-arc FIFO channels) reproduces the dense delivery order.
            assert_eq!(seq.program(v).heard, mb.program(v).heard);
        }
        assert_eq!(seq.metrics().rounds(), par.metrics().rounds());
        assert_eq!(seq.metrics().rounds(), mb.metrics().rounds());
    }

    #[test]
    fn multicast_delivery_covers_parallel_edges() {
        // Node 0 and node 1 are joined by two parallel edges; a multicast
        // naming the neighbour once must be delivered once per parallel arc
        // (the receiver scans its neighbour list), exactly like the old
        // `targets.contains` path.
        let mut g = WeightedGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        struct ZeroMulticasts {
            received: usize,
        }
        impl NodeProgram for ZeroMulticasts {
            type Message = u32;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u32> {
                if ctx.node() == NodeId(0) {
                    Outgoing::Multicast(1, vec![NodeId(1)])
                } else {
                    Outgoing::Silent
                }
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[Delivery<u32>]) -> bool {
                self.received += inbox.len();
                false
            }
        }
        for mode in [ExecutionMode::Sequential, ExecutionMode::Mailbox] {
            let mut net = NetworkBuilder::new()
                .mode(mode)
                .build(&g, |_| ZeroMulticasts { received: 0 });
            let stats = net.run_round();
            assert_eq!(stats.messages, 1, "accounting counts target entries");
            assert_eq!(
                net.program(NodeId(1)).received,
                2,
                "one delivery per parallel arc ({mode:?})"
            );
            assert_eq!(net.program(NodeId(2)).received, 0);
        }
    }

    #[test]
    fn buffer_reuse_after_warmup() {
        let g = complete_graph(12);
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut net = NetworkBuilder::new()
                .mode(mode)
                .build(&g, |_| RotatingMulticast { heard: vec![] });
            // Warm-up: one full rotation cycle, so every inbox has seen its
            // maximum per-round message count at least once.
            net.run(12);
            let warm = net.buffer_stats();
            assert!(warm.outbox_capacity >= 12);
            assert!(warm.multicast_stamp_slots == net.graph().num_arcs());
            net.run(24);
            assert_eq!(
                net.buffer_stats(),
                warm,
                "steady-state rounds must not grow executor buffers ({mode:?})"
            );
        }
    }

    #[test]
    fn sparse_buffer_reuse_after_warmup() {
        let g = path_graph(24);
        for mode in [
            ExecutionMode::SparseSequential,
            ExecutionMode::SparseParallel,
        ] {
            let mut net = min_id_network(&g, mode);
            net.run(4);
            let warm = net.buffer_stats();
            net.run(40);
            assert_eq!(
                net.buffer_stats(),
                warm,
                "steady-state sparse rounds must not grow executor buffers ({mode:?})"
            );
        }
    }

    #[test]
    fn empty_multicast_is_silent_and_does_not_panic() {
        // Regression: an empty-target multicast in a round with no other
        // multicast used to index the unallocated stamp array in the receive
        // phase.
        struct EmptyMulticast {
            received: usize,
        }
        impl NodeProgram for EmptyMulticast {
            type Message = u32;
            fn broadcast(&mut self, _ctx: &NodeContext<'_>) -> Outgoing<u32> {
                Outgoing::Multicast(1, vec![])
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[Delivery<u32>]) -> bool {
                self.received += inbox.len();
                false
            }
        }
        let g = complete_graph(3);
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut net = NetworkBuilder::new()
                .mode(mode)
                .build(&g, |_| EmptyMulticast { received: 0 });
            let stats = net.run_round();
            assert_eq!(stats.messages, 0);
            assert_eq!(stats.sending_nodes, 0);
            for v in g.nodes() {
                assert_eq!(net.program(v).received, 0);
            }
        }
    }

    #[test]
    fn multicast_loss_accounting_reflects_delivery() {
        // With certain loss, a multicast sender's copies are all dropped:
        // nothing may be counted. (Regression test: the old executor counted
        // the sender's messages even when every target was dropped.)
        let g = complete_graph(4);
        struct AlwaysMulticast;
        impl NodeProgram for AlwaysMulticast {
            type Message = u32;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u32> {
                Outgoing::Multicast(3, ctx.neighbors().to_vec())
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[Delivery<u32>]) -> bool {
                assert!(inbox.is_empty(), "loss=1.0 must drop every copy");
                false
            }
        }
        let mut net = NetworkBuilder::new()
            .mode(ExecutionMode::Sequential)
            .message_loss(LossModel::new(1.0, 7))
            .build(&g, |_| AlwaysMulticast);
        let stats = net.run_round();
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.payload_bits, 0);
        assert_eq!(stats.max_message_bits, 0);
        assert_eq!(stats.sending_nodes, 0);
    }

    #[test]
    fn partial_loss_accounting_matches_the_loss_model() {
        let g = complete_graph(6);
        let model = LossModel::new(0.5, 99);
        let mut net = min_id_faulty(&g, ExecutionMode::Sequential, FaultPlan::from_loss(model));
        let stats = net.run_round();
        // Recompute the expected delivered-copy count straight from the model.
        let mut expected = 0usize;
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v && !model.drops(1, u, v, 0) {
                    expected += 1;
                }
            }
        }
        assert!(
            expected > 0 && expected < 30,
            "seed produced a trivial case"
        );
        assert_eq!(stats.messages, expected);
        assert_eq!(stats.payload_bits, expected * 32);
    }

    use crate::faults::{BurstLoss, ByzantineModel, CrashModel, FaultPlan, PartitionModel};

    /// Regression (the correlated-drop bug): a unicast batch carrying several
    /// distinct messages to the SAME receiver in the same round used to share
    /// one drop decision keyed on `(round, from, to)` — all copies lived or
    /// died together. The per-message index decorrelates them; delivery and
    /// accounting must agree on the per-message decisions, in both executors.
    #[test]
    fn unicast_batch_to_one_receiver_gets_independent_drop_decisions() {
        struct Batch {
            received: Vec<u64>,
        }
        impl NodeProgram for Batch {
            type Message = u64;
            fn broadcast(&mut self, ctx: &NodeContext<'_>) -> Outgoing<u64> {
                if ctx.node() == NodeId(0) {
                    // Four distinct messages to the same neighbour each round.
                    Outgoing::Unicast((0..4).map(|k| (NodeId(1), 100 + k)).collect())
                } else {
                    Outgoing::Silent
                }
            }
            fn receive(&mut self, _ctx: &NodeContext<'_>, inbox: &[Delivery<u64>]) -> bool {
                self.received.extend(inbox.iter().map(|d| d.msg));
                !inbox.is_empty()
            }
        }
        let mut g = WeightedGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let model = LossModel::new(0.5, 7);
        let rounds = 60;
        let run = |mode: ExecutionMode| {
            let mut net = NetworkBuilder::new()
                .mode(mode)
                .message_loss(model)
                .build(&g, |_| Batch { received: vec![] });
            net.run(rounds);
            let received = net.program(NodeId(1)).received.clone();
            let (_, metrics) = net.into_parts();
            (received, metrics)
        };
        let (received, metrics) = run(ExecutionMode::Sequential);
        // Per round, the delivered subset must match the per-index model
        // decisions — not an all-or-nothing link-level coin flip.
        let mut expected = Vec::new();
        for r in 1..=rounds {
            for k in 0..4u64 {
                if !model.drops(r, NodeId(0), NodeId(1), k as usize) {
                    expected.push(100 + k);
                }
            }
        }
        assert_eq!(received, expected);
        let partial_rounds = (1..=rounds)
            .filter(|&r| {
                let delivered = (0..4)
                    .filter(|&k| !model.drops(r, NodeId(0), NodeId(1), k))
                    .count();
                delivered > 0 && delivered < 4
            })
            .count();
        assert!(
            partial_rounds > 10,
            "decisions still correlated: no partially-delivered batches"
        );
        // Accounting counted exactly the delivered copies.
        assert_eq!(metrics.total_messages(), expected.len());
        assert_eq!(metrics.total_dropped_loss(), rounds * 4 - expected.len());
        // The parallel executor agrees exactly (the program accumulates
        // duplicates, so it is not delta-driven and the sparse modes do not
        // apply to it).
        let (par_received, par_metrics) = run(ExecutionMode::Parallel);
        assert_eq!(par_received, received);
        assert_eq!(par_metrics.rounds(), metrics.rounds());
        // The mailbox backend preserves the batch order of same-arc unicasts
        // and agrees on every counter, including the per-index drops.
        let (mb_received, mb_metrics) = run(ExecutionMode::Mailbox);
        assert_eq!(mb_received, received);
        assert_eq!(mb_metrics.rounds(), metrics.rounds());
    }

    /// Every execution mode agrees on state and counters under a fault plan
    /// mixing all four components.
    #[test]
    fn all_modes_agree_under_a_full_fault_plan() {
        let g = path_graph(20);
        let plan = FaultPlan::from_loss(LossModel::new(0.2, 5))
            .with_burst(BurstLoss::new(6, 2, 9))
            .with_crash(CrashModel::new(0.15, 2, 10, 13))
            .with_partition(PartitionModel::new(0.3, 4, 9, 21));
        let mut reference = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        reference.run(30);
        for mode in &ALL_MODES[1..] {
            let mut net = min_id_faulty(&g, *mode, plan);
            net.run(30);
            for v in g.nodes() {
                assert_eq!(reference.program(v).best, net.program(v).best, "{mode:?}");
            }
        }
        // Dense counters agree exactly between sequential and parallel.
        let mut par = min_id_faulty(&g, ExecutionMode::Parallel, plan);
        par.run(30);
        assert_eq!(reference.metrics().rounds(), par.metrics().rounds());
        // The mailbox backend agrees with dense lockstep on every counter,
        // including the measured wire bits and per-component drop counts.
        let mut mb = min_id_faulty(&g, ExecutionMode::Mailbox, plan);
        mb.run(30);
        assert_eq!(reference.metrics().rounds(), mb.metrics().rounds());
        // Sparse counters agree between the two sparse modes.
        let mut ss = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        let mut sp = min_id_faulty(&g, ExecutionMode::SparseParallel, plan);
        ss.run(30);
        sp.run(30);
        assert_eq!(ss.metrics().rounds(), sp.metrics().rounds());
    }

    /// The tentpole acceptance at the executor level: under a byzantine plan
    /// with every behavior enabled plus quarantine, all five modes agree on
    /// final values, and the schedule-driven byzantine counters (accusations,
    /// quarantined nodes) are byte-identical per round in every mode — they
    /// are pure hash schedules, independent of executor traffic.
    #[test]
    fn all_modes_agree_under_byzantine_and_quarantine() {
        let g = path_graph(20);
        let plan = FaultPlan::none().with_byzantine(
            ByzantineModel::new(0.35, ByzantineModel::ALL_BEHAVIORS, 2, 16, 23).with_quarantine(2),
        );
        let mut reference = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        reference.run(30);
        assert!(reference.metrics().byzantine_accusations() > 0);
        assert!(reference.metrics().quarantined_nodes() > 0);
        for mode in &ALL_MODES[1..] {
            let mut net = min_id_faulty(&g, *mode, plan);
            net.run(30);
            for v in g.nodes() {
                assert_eq!(reference.program(v).best, net.program(v).best, "{mode:?}");
            }
            for (a, b) in reference
                .metrics()
                .rounds()
                .iter()
                .zip(net.metrics().rounds())
            {
                assert_eq!(
                    (a.byzantine_accusations, a.quarantined_nodes),
                    (b.byzantine_accusations, b.quarantined_nodes),
                    "{mode:?} round {}",
                    a.round
                );
            }
        }
        // The dense lockstep pair and the mailbox backend agree on EVERY
        // counter (tamper and spam accounting included).
        for mode in [ExecutionMode::Parallel, ExecutionMode::Mailbox] {
            let mut net = min_id_faulty(&g, mode, plan);
            net.run(30);
            assert_eq!(
                reference.metrics().rounds(),
                net.metrics().rounds(),
                "{mode:?}"
            );
        }
        // The two sparse modes agree with each other on every counter.
        let mut ss = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        let mut sp = min_id_faulty(&g, ExecutionMode::SparseParallel, plan);
        ss.run(30);
        sp.run(30);
        assert_eq!(ss.metrics().rounds(), sp.metrics().rounds());
    }

    /// Spam accounting: an active spammer puts [`ByzantineModel::SPAM_FACTOR`]
    /// copies of each frame on the wire, every copy individually counted —
    /// and in a drop-free plan, individually delivered.
    #[test]
    fn spam_multiplies_wire_copies_per_sender() {
        let g = complete_graph(8);
        let model = ByzantineModel::new(0.5, Behavior::Spam.bit(), 2, 4, 31);
        let spammers: usize = (0..8)
            .filter(|&v| model.behavior_of(NodeId::new(v)) == Some(Behavior::Spam))
            .count();
        assert!(spammers > 0, "seed produced no spammers");
        let mut net = min_id_faulty(
            &g,
            ExecutionMode::Sequential,
            FaultPlan::none().with_byzantine(model),
        );
        net.run(6);
        for r in net.metrics().rounds() {
            let expected = if model.active(r.round) {
                (8 - spammers) * 7 + spammers * 7 * ByzantineModel::SPAM_FACTOR
            } else {
                8 * 7
            };
            assert_eq!(r.messages, expected, "round {}", r.round);
        }
    }

    /// Quarantine silences a node's outgoing traffic but never its inbox:
    /// on a complete graph the quarantined nodes still converge to the global
    /// minimum, while the per-round message count visibly shrinks once the
    /// quarantine takes effect.
    #[test]
    fn quarantine_silences_outgoing_but_still_receives() {
        let g = complete_graph(12);
        // detect = 1.0 and threshold 1: every byzantine node is accused in
        // round 2 and quarantined from round 3 on.
        let model = ByzantineModel::new(0.4, ByzantineModel::ALL_BEHAVIORS, 2, 20, 47)
            .with_detect(1.0)
            .with_quarantine(1);
        let quarantined: Vec<usize> = (0..12)
            .filter(|&v| model.quarantine_round(NodeId::new(v)) == Some(3))
            .collect();
        assert!(!quarantined.is_empty(), "seed produced no quarantines");
        // Keep the true minimum honest so its floods are never tampered.
        assert!(
            !model.is_byzantine(NodeId(0)),
            "seed made node 0 byzantine; pick another seed"
        );
        let mut net = min_id_faulty(
            &g,
            ExecutionMode::Sequential,
            FaultPlan::none().with_byzantine(model),
        );
        net.run(20);
        // Quarantined nodes keep receiving: node 0 broadcasts its id to
        // everyone directly, so every node — quarantined or not — ends at 0.
        for v in g.nodes() {
            assert_eq!(net.program(v).best, 0, "node {v}");
        }
        let rounds = net.metrics().rounds();
        // From round 3 on, the quarantined nodes' 11 outgoing copies each are
        // gone from the wire (the remaining byzantine nodes may also mute or
        // spam, so compare against the exact pre-quarantine round-1 count).
        assert_eq!(rounds[0].messages, 12 * 11);
        assert!(
            rounds[3].messages <= (12 - quarantined.len()) * 11 * ByzantineModel::SPAM_FACTOR,
            "quarantined senders still on the wire in round 4"
        );
        assert_eq!(net.metrics().quarantined_nodes(), quarantined.len());
    }

    /// A byzantine window opening AFTER the protocol has quiesced must
    /// reactivate the sparse frontier: the liar's newly tampered (smaller)
    /// value floods the graph, and sparse stays value-identical to dense.
    #[test]
    fn lie_window_reactivates_quiescent_sparse_frontier() {
        let g = path_graph(12);
        // MinIdFlood on a 12-path quiesces within ~11 rounds; the lie window
        // opens well after that.
        let model = ByzantineModel::new(0.3, Behavior::Lie.bit(), 15, 18, 5);
        let liars: usize = (0..12)
            .filter(|&v| model.behavior_of(NodeId::new(v)) == Some(Behavior::Lie))
            .count();
        assert!(liars > 0, "seed produced no liars");
        let plan = FaultPlan::none().with_byzantine(model);
        let mut dense = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        let mut sparse = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        dense.run(25);
        sparse.run(25);
        for v in g.nodes() {
            assert_eq!(dense.program(v).best, sparse.program(v).best, "node {v}");
        }
        let by_round = sparse.metrics().rounds();
        // Quiet before the window…
        assert_eq!(
            by_round[13].messages, 0,
            "frontier not quiescent by round 14"
        );
        // …and lying (tampered ids scale DOWN, so the min-merge absorbs them
        // and the flood restarts) once it opens.
        assert!(
            by_round[14].messages > 0,
            "sparse frontier failed to wake for the byzantine window"
        );
    }

    /// The acceptance criterion of the fault PR: an empty (or trivial) plan
    /// reproduces the fault-free run bit-for-bit, in every mode.
    #[test]
    fn trivial_plan_is_bit_identical_to_no_plan() {
        let g = complete_graph(10);
        let trivial = [
            FaultPlan::none(),
            FaultPlan::from_loss(LossModel::new(0.0, 7)),
            FaultPlan::none().with_burst(BurstLoss::new(5, 0, 1)),
            FaultPlan::none().with_crash(CrashModel::new(0.0, 1, 4, 2)),
            FaultPlan::none().with_partition(PartitionModel::new(0.0, 1, 4, 3)),
        ];
        for mode in ALL_MODES {
            let mut clean = min_id_network(&g, mode);
            clean.run(5);
            for plan in trivial {
                let mut planned = min_id_faulty(&g, mode, plan);
                planned.run(5);
                assert_eq!(
                    clean.metrics().rounds(),
                    planned.metrics().rounds(),
                    "{mode:?} {plan:?}"
                );
                for v in g.nodes() {
                    assert_eq!(clean.program(v).best, planned.program(v).best);
                }
            }
        }
    }

    /// Crash-stop: crashed nodes stop sending and stepping, leave the sparse
    /// frontier, and the cumulative crash counter reports them.
    #[test]
    fn crashed_nodes_leave_the_frontier_and_freeze() {
        let g = path_graph(30);
        // Deterministically crash ~40% of nodes between rounds 2 and 6.
        let plan = FaultPlan::none().with_crash(CrashModel::new(0.4, 2, 6, 99));
        let crash = plan.crash.unwrap();
        let crashed: Vec<usize> = (0..30)
            .filter(|&v| crash.crash_round(NodeId::new(v)).is_some())
            .collect();
        assert!(!crashed.is_empty(), "seed produced no crashes");

        let mut clean = min_id_network(&g, ExecutionMode::SparseSequential);
        let mut faulty = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        let mut dense = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        clean.run(40);
        faulty.run(40);
        dense.run(40);

        // Dense and sparse agree on the final state under the crash plan.
        for v in g.nodes() {
            assert_eq!(faulty.program(v).best, dense.program(v).best, "node {v}");
        }
        // A node crashed at round r last stepped in round r - 1, when the
        // flood had reached it from at most r - 1 hops away — unless an
        // upstream node crashed even earlier and never relayed the smaller
        // id, in which case it knows strictly less.
        for &v in &crashed {
            let r = crash.crash_round(NodeId::new(v)).unwrap();
            let frozen = faulty.program(NodeId::new(v)).best;
            assert!(
                frozen >= (v as u32).saturating_sub((r - 1) as u32),
                "node {v} crashed at round {r} but knows id {frozen}"
            );
        }
        // Strictly fewer node updates than the fault-free run (crashed nodes
        // left the frontier), and the crash counter is cumulative.
        assert!(
            faulty.metrics().total_node_updates() < clean.metrics().total_node_updates(),
            "crash run must do strictly less work ({} vs {})",
            faulty.metrics().total_node_updates(),
            clean.metrics().total_node_updates()
        );
        assert_eq!(faulty.metrics().crashed_nodes(), crashed.len());
        let per_round: Vec<usize> = faulty
            .metrics()
            .rounds()
            .iter()
            .map(|r| r.crashed_nodes)
            .collect();
        assert!(per_round.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert_eq!(per_round[0], 0, "crash window starts at round 2");
        // No drops were involved: crashes are not counted as dropped copies.
        assert_eq!(faulty.metrics().total_dropped(), 0);
    }

    /// Partition: during the window nothing crosses the cut (both directions),
    /// partitioned-but-alive senders stay in the frontier, and after healing
    /// the protocol converges to the same fixpoint as a fault-free run.
    #[test]
    fn partition_heals_and_senders_stay_in_frontier() {
        let g = path_graph(12);
        let plan = FaultPlan::none().with_partition(PartitionModel::new(0.5, 2, 8, 17));
        let part = plan.partition.unwrap();
        assert!(
            (1..12u32).any(|v| part.minority_side(NodeId(v)) != part.minority_side(NodeId(0))),
            "seed produced a trivial cut"
        );
        for mode in [ExecutionMode::Sequential, ExecutionMode::SparseSequential] {
            let mut net = min_id_faulty(&g, mode, plan);
            net.run(40);
            // Healing: everyone still converges to the global minimum.
            for v in g.nodes() {
                assert_eq!(net.program(v).best, 0, "{mode:?} node {v}");
            }
            assert!(
                net.metrics().total_dropped_partition() > 0,
                "{mode:?}: the cut never dropped anything"
            );
            assert_eq!(net.metrics().total_dropped_loss(), 0);
            assert_eq!(net.metrics().total_dropped_burst(), 0);
        }
        // Sparse and dense deliver the same rounds-to-convergence.
        let mut dense = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        let mut sparse = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        let dr = dense.run_until_quiescent(100);
        let sr = sparse.run_until_quiescent(100);
        assert_eq!(dr, sr, "convergence rounds must agree");
    }

    /// Burst loss: dark windows drop copies (counted per component) but the
    /// periodic re-sends still converge the flood, identically across modes.
    #[test]
    fn burst_loss_drops_in_windows_and_converges() {
        let g = path_graph(10);
        let plan = FaultPlan::none().with_burst(BurstLoss::new(4, 2, 33));
        let mut dense = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        let mut sparse = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        dense.run(40);
        sparse.run(40);
        for v in g.nodes() {
            assert_eq!(dense.program(v).best, 0, "node {v}");
            assert_eq!(sparse.program(v).best, 0, "node {v}");
        }
        assert!(dense.metrics().total_dropped_burst() > 0);
        assert_eq!(dense.metrics().total_dropped_loss(), 0);
        // Burst drops plus delivered copies account for every copy a dense
        // round put on the wire: n-1 edges, 2 copies per edge per round.
        let per_round_copies = 2 * (10 - 1);
        for r in dense.metrics().rounds() {
            assert_eq!(
                r.messages + r.dropped_burst,
                per_round_copies,
                "round {}",
                r.round
            );
        }
    }

    /// Drop attribution is exclusive: each dropped copy is charged to exactly
    /// one component, and totals reconcile with delivered messages.
    #[test]
    fn drop_counters_reconcile_with_deliveries() {
        let g = complete_graph(8);
        let plan = FaultPlan::from_loss(LossModel::new(0.3, 3))
            .with_burst(BurstLoss::new(5, 2, 4))
            .with_partition(PartitionModel::new(0.4, 2, 6, 5))
            .with_byzantine(ByzantineModel::new(0.4, Behavior::Mute.bit(), 2, 6, 9));
        let mut net = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        net.run(8);
        let m = net.metrics();
        assert!(m.total_dropped_loss() > 0);
        assert!(m.total_dropped_burst() > 0);
        assert!(m.total_dropped_partition() > 0);
        assert!(m.total_dropped_byzantine() > 0);
        // 8*7 copies put on the wire per round (mute-only byzantine nodes
        // still send every copy — a hashed half just vanishes in flight);
        // all either delivered or attributed to exactly one fault component.
        for r in m.rounds() {
            assert_eq!(
                r.messages
                    + r.dropped_loss
                    + r.dropped_burst
                    + r.dropped_partition
                    + r.dropped_byzantine,
                8 * 7,
                "round {}",
                r.round
            );
        }
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn fault_plan_must_be_installed_before_running() {
        let g = complete_graph(3);
        let mut net = min_id_network(&g, ExecutionMode::Sequential);
        net.run(1);
        net.install_faults(FaultPlan::from_loss(LossModel::new(0.5, 1)));
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn shard_partition_must_be_installed_before_running() {
        let g = complete_graph(3);
        let mut net = min_id_network(&g, ExecutionMode::SparseSequential);
        net.run(1);
        net.install_sharding(2, 0);
    }

    /// Strips the counters that only sharded execution populates, so a
    /// multi-shard run can be compared field-for-field against an unsharded
    /// one. Everything else must be byte-identical.
    fn strip_boundary(rounds: &[RoundStats]) -> Vec<RoundStats> {
        rounds
            .iter()
            .map(|r| RoundStats {
                boundary_bits: 0,
                boundary_nodes: 0,
                ..*r
            })
            .collect()
    }

    /// Tentpole acceptance (unit form; the cross-crate proptest pins the same
    /// property over random graphs × fault plans): sharded execution is
    /// byte-identical to unsharded sparse lockstep on every deterministic
    /// counter and every node value, for any shard count, under a full fault
    /// plan.
    #[test]
    fn sharded_is_byte_identical_across_shard_counts() {
        let g = path_graph(17);
        let plan = FaultPlan::from_loss(LossModel::new(0.25, 3))
            .with_burst(BurstLoss::new(5, 2, 8))
            .with_crash(CrashModel::new(0.2, 2, 9, 4))
            .with_partition(PartitionModel::new(0.3, 3, 7, 6))
            .with_byzantine(
                ByzantineModel::new(0.2, ByzantineModel::ALL_BEHAVIORS, 2, 12, 7)
                    .with_detect(0.5)
                    .with_quarantine(3),
            );
        let mut reference = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        reference.run(25);
        for shards in [1usize, 2, 4, 8] {
            let mut net = NetworkBuilder::new()
                .shards(shards)
                .shard_seed(42)
                .faults(plan)
                .build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
            assert_eq!(net.shard_config(), Some((shards, 42)));
            net.run(25);
            assert_eq!(
                strip_boundary(reference.metrics().rounds()),
                strip_boundary(net.metrics().rounds()),
                "shards={shards}"
            );
            for v in g.nodes() {
                assert_eq!(
                    reference.program(v).best,
                    net.program(v).best,
                    "shards={shards} node {v}"
                );
            }
            if shards == 1 {
                // Single shard: no cut, no boundary traffic, full equality.
                assert_eq!(reference.metrics().rounds(), net.metrics().rounds());
                assert_eq!(net.metrics().total_boundary_bits(), 0);
            } else {
                // A path partitioned by hash always cuts some edge, and each
                // boundary frame costs real measured bits.
                assert!(net.metrics().total_boundary_bits() > 0, "shards={shards}");
                assert!(net.metrics().total_boundary_nodes() > 0, "shards={shards}");
            }
        }
    }

    /// Boundary traffic is sparse: once the frontier collapses, boundary
    /// frames stop too (frontier ∩ boundary ⊆ frontier).
    #[test]
    fn boundary_traffic_follows_the_frontier() {
        let g = path_graph(32);
        let mut net = NetworkBuilder::new()
            .shards(4)
            .build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
        net.run(200);
        let rounds = net.metrics().rounds();
        let last_active = net.metrics().last_active_round().expect("converges");
        for r in rounds {
            if r.round > last_active + 1 {
                assert_eq!(r.boundary_bits, 0, "round {}", r.round);
                assert_eq!(r.boundary_nodes, 0, "round {}", r.round);
            }
            // Boundary senders are frontier members that own a cut arc.
            assert!(r.boundary_nodes <= r.sending_nodes, "round {}", r.round);
        }
    }

    #[test]
    #[should_panic(expected = "does not compose with the mailbox backend")]
    fn sharding_rejects_the_mailbox_backend() {
        let g = path_graph(4);
        let _ = NetworkBuilder::new()
            .mode(ExecutionMode::Mailbox)
            .shards(2)
            .build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
    }

    /// Tentpole acceptance (unit form; the cross-crate proptest pins the
    /// same property over random graphs): the mailbox backend's RoundStats —
    /// including measured wire bits and per-component drop counters — are
    /// byte-identical to sequential lockstep, for any shard count and even
    /// under a tiny mailbox capacity that forces backpressure stalls.
    #[test]
    fn mailbox_is_byte_identical_across_thread_counts() {
        let g = path_graph(17);
        let plan = FaultPlan::from_loss(LossModel::new(0.25, 3))
            .with_burst(BurstLoss::new(5, 2, 8))
            .with_crash(CrashModel::new(0.2, 2, 9, 4))
            .with_partition(PartitionModel::new(0.3, 3, 7, 6));
        let mut reference = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        reference.run(25);
        for threads in [1, 2, 3, 8, 64] {
            let mut mb = NetworkBuilder::new()
                .mode(ExecutionMode::Mailbox)
                .faults(plan)
                .threads(threads)
                .mailbox_capacity(2)
                .build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
            mb.run(25);
            assert_eq!(
                reference.metrics().rounds(),
                mb.metrics().rounds(),
                "threads={threads}"
            );
            for v in g.nodes() {
                assert_eq!(reference.program(v).best, mb.program(v).best);
            }
            // Well-formed in-tree programs never fail wire decoding.
            assert!(mb.decode_faults().is_empty());
        }
    }

    /// A frame over the receiver's payload cap is rejected on decode and
    /// attributed to the **sending** node — never a panic. (In-tree programs
    /// never hit this; the cap guards the protocol boundary.)
    #[test]
    fn oversized_frames_are_attributed_to_the_sender() {
        let g = path_graph(4);
        let mut net = NetworkBuilder::new()
            .mode(ExecutionMode::Mailbox)
            // u32 payloads are 4 bytes; a 3-byte cap rejects every frame.
            .max_frame_bytes(3)
            .build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
        net.run(3);
        // Nothing was ever delivered, so nothing changed.
        for v in g.nodes() {
            assert_eq!(net.program(v).best, v.0);
        }
        // Each rejected frame is charged to its sender: per round the path
        // endpoints send 1 copy, the interior nodes 2.
        assert_eq!(net.decode_faults(), &[3, 6, 6, 3]);
        // Send-side accounting is unaffected (the sender put the copies on
        // the wire); rejection is receiver-side attribution, not a drop.
        assert_eq!(net.metrics().total_messages(), 3 * 6);
    }

    #[test]
    #[should_panic]
    fn program_count_must_match_node_count() {
        let g = complete_graph(3);
        let csr = CsrGraph::from(&g);
        let _ = Network::from_parts(csr, vec![MinIdFlood { best: 0 }]);
    }

    // -----------------------------------------------------------------------
    // Checkpoint/restore.
    // -----------------------------------------------------------------------

    impl SnapshotState for MinIdFlood {
        fn save_state(&self, w: &mut WireWriter) -> Result<(), crate::wire::WireError> {
            self.best.serialize(w)
        }

        fn load_state(&mut self, r: &mut WireReader<'_>) -> Result<(), CheckpointError> {
            self.best = r.read_u32()?;
            Ok(())
        }
    }

    fn checkpoint_plan() -> FaultPlan {
        FaultPlan::from_loss(LossModel::new(0.3, 7))
            .with_burst(crate::faults::BurstLoss::new(5, 2, 11))
            .with_crash(crate::faults::CrashModel::new(0.2, 2, 8, 13))
            .with_partition(crate::faults::PartitionModel::new(0.3, 3, 6, 17))
            .with_byzantine(
                crate::faults::ByzantineModel::new(
                    0.3,
                    crate::faults::ByzantineModel::ALL_BEHAVIORS,
                    2,
                    9,
                    19,
                )
                .with_quarantine(2),
            )
    }

    /// The tentpole guarantee at the executor level: a run snapshotted after
    /// *any* round and restored into a fresh network finishes byte-identical
    /// — final values, per-round counters, the lot — to an uninterrupted run,
    /// in every execution mode, under a full fault plan.
    #[test]
    fn save_restore_is_byte_identical_at_every_round() {
        let g = path_graph(14);
        let plan = checkpoint_plan();
        let total = 12usize;
        for mode in ALL_MODES {
            let mut reference = min_id_faulty(&g, mode, plan);
            reference.run(total);
            for cut in 0..=total {
                let mut first = min_id_faulty(&g, mode, plan);
                first.run(cut);
                let state = first.save_state().expect("save");
                drop(first); // the "killed" process

                let mut resumed = min_id_faulty(&g, mode, plan);
                resumed.restore_state(&state).expect("restore");
                assert_eq!(resumed.round(), cut);
                resumed.run(total - cut);

                for v in g.nodes() {
                    assert_eq!(
                        reference.program(v).best,
                        resumed.program(v).best,
                        "{mode:?} cut at {cut}, node {v}"
                    );
                }
                assert_eq!(
                    reference.metrics().rounds(),
                    resumed.metrics().rounds(),
                    "{mode:?} cut at {cut}"
                );
            }
        }
    }

    /// Checkpoint/restore composes with multi-shard execution: the boundary
    /// buffers are drained every round, so a round boundary carries no
    /// sharding state beyond the (rebuilt-from-config) partition — cut at any
    /// round and the resumed run finishes byte-identical.
    #[test]
    fn sharded_save_restore_is_byte_identical_at_every_round() {
        let g = path_graph(14);
        let plan = checkpoint_plan();
        let total = 12usize;
        let build = || {
            NetworkBuilder::new()
                .shards(4)
                .shard_seed(9)
                .faults(plan)
                .build(&g, |ctx| MinIdFlood { best: ctx.node().0 })
        };
        let mut reference = build();
        reference.run(total);
        for cut in 0..=total {
            let mut first = build();
            first.run(cut);
            let state = first.save_state().expect("save");
            drop(first);

            let mut resumed = build();
            resumed.restore_state(&state).expect("restore");
            assert_eq!(resumed.round(), cut);
            resumed.run(total - cut);

            for v in g.nodes() {
                assert_eq!(
                    reference.program(v).best,
                    resumed.program(v).best,
                    "cut at {cut}, node {v}"
                );
            }
            assert_eq!(
                reference.metrics().rounds(),
                resumed.metrics().rounds(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn run_with_checkpoints_writes_at_boundaries_and_resumes_from_disk() {
        let dir = std::env::temp_dir().join(format!("dkc-net-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.dkck");
        let g = path_graph(10);
        let plan = checkpoint_plan();

        let mut reference = min_id_faulty(&g, ExecutionMode::SparseSequential, plan);
        reference.run(9);

        let builder = NetworkBuilder::new()
            .mode(ExecutionMode::SparseSequential)
            .faults(plan)
            .checkpoint_every(2);
        let mut interrupted = builder.build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
        interrupted.checkpoint_to(&path, b"run-params".to_vec());
        // "Killed" after 5 rounds: the latest checkpoint on disk is round 4.
        interrupted.run_with_checkpoints(5).unwrap();
        drop(interrupted);

        let image = checkpoint::read_checkpoint_bytes(&path).unwrap();
        let (preamble, state) = checkpoint::decode_checkpoint(&image).unwrap();
        assert_eq!(preamble, b"run-params");
        let mut resumed = builder.build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
        resumed.checkpoint_to(&path, b"run-params".to_vec());
        resumed.restore_state(state).unwrap();
        assert_eq!(
            resumed.round(),
            4,
            "latest checkpoint is the round-4 boundary"
        );
        resumed.run_with_checkpoints(9 - 4).unwrap();

        for v in g.nodes() {
            assert_eq!(reference.program(v).best, resumed.program(v).best);
        }
        assert_eq!(reference.metrics().rounds(), resumed.metrics().rounds());

        // The resumed run checkpointed at absolute boundaries: the file now
        // holds the round-8 snapshot (9 is not a boundary).
        let image = checkpoint::read_checkpoint_bytes(&path).unwrap();
        let (_, state) = checkpoint::decode_checkpoint(&image).unwrap();
        let mut last = builder.build(&g, |ctx| MinIdFlood { best: ctx.node().0 });
        last.restore_state(state).unwrap();
        assert_eq!(last.round(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_mismatched_runs() {
        let g = path_graph(8);
        let plan = checkpoint_plan();
        let mut src = min_id_faulty(&g, ExecutionMode::Sequential, plan);
        src.run(3);
        let state = src.save_state().unwrap();

        // Different node count.
        let other = path_graph(9);
        let err = min_id_faulty(&other, ExecutionMode::Sequential, plan)
            .restore_state(&state)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

        // Different fault plan.
        let err = min_id_faulty(&g, ExecutionMode::Sequential, FaultPlan::none())
            .restore_state(&state)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

        // Wrong mode family (dense checkpoint into a sparse executor).
        let err = min_id_faulty(&g, ExecutionMode::SparseSequential, plan)
            .restore_state(&state)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        // ... but any mode of the same family accepts it.
        for mode in [ExecutionMode::Parallel, ExecutionMode::Mailbox] {
            min_id_faulty(&g, mode, plan).restore_state(&state).unwrap();
        }

        // Truncated and trailing-garbage state payloads.
        let err = min_id_faulty(&g, ExecutionMode::Sequential, plan)
            .restore_state(&state[..state.len() - 1])
            .unwrap_err();
        assert_eq!(err, CheckpointError::Truncated);
        let mut trailing = state.clone();
        trailing.push(0);
        let err = min_id_faulty(&g, ExecutionMode::Sequential, plan)
            .restore_state(&trailing)
            .unwrap_err();
        assert_eq!(err, CheckpointError::TrailingBytes { remaining: 1 });
    }
}
