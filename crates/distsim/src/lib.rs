//! # dkc-distsim
//!
//! A simulator for the **synchronous LOCAL / CONGEST model** used by the paper:
//! every node is a processor that knows only its incident edges (and their
//! weights) and, in each synchronous round, sends a message to (a subset of)
//! its neighbours, then updates its state from the messages it received.
//!
//! The simulator is the substrate substitution for an actual distributed
//! deployment: all of the paper's claims are about *round complexity* and
//! *message size*, and both are measured exactly here (see [`metrics`] and
//! [`congest`]).
//!
//! ## Structure
//!
//! * [`program::NodeProgram`] — the per-node state machine interface
//!   (broadcast phase + receive phase per round).
//! * [`network::Network`] — the synchronous executor; runs rounds either
//!   sequentially or data-parallel across nodes (rayon) — rounds are barriers,
//!   so both modes produce identical results.
//! * [`metrics`] — per-round and cumulative message/bit accounting.
//! * [`congest`] — CONGEST-model message-size budgets and checks.
//! * [`message::MessageSize`] — payload size accounting used by the metrics.
//! * [`faults`] — the deterministic [`FaultPlan`] subsystem: composable
//!   i.i.d. loss, burst loss, crash-stop, partition, and byzantine
//!   (lie/equivocate/mute/spam, with detection and quarantine) fault
//!   injection.
//! * [`checkpoint`] — versioned snapshot/restore of mid-run executor state,
//!   so a run killed at any round resumes byte-identically.
//! * [`shard`] — the [`shard::BoundaryDelta`] wire frame behind
//!   [`ExecutionMode::Sharded`]: shards run rounds locally over the nodes
//!   they own and exchange frontier ∩ boundary updates per ordered shard
//!   pair, with defensive structural validation on receipt.

#![deny(deprecated)]

pub mod checkpoint;
pub mod congest;
pub mod faults;
mod mailbox;
pub mod message;
pub mod metrics;
pub mod network;
pub mod program;
pub mod shard;
pub mod wire;

pub use checkpoint::{CheckpointError, SnapshotState};
pub use congest::congest_budget_bits;
pub use faults::{
    Behavior, BurstLoss, ByzantineModel, CrashModel, DropCause, FaultPlan, LossModel,
    PartitionModel,
};
pub use message::{MessageSize, Tamper};
pub use metrics::{RoundStats, RunMetrics};
pub use network::{ExecutionMode, ExecutorBufferStats, Network, NetworkBuilder};
pub use program::{Delivery, NodeContext, NodeProgram, Outgoing};
pub use shard::{BoundaryDelta, BoundaryRecord, ShardFrameError};
pub use wire::{WireCodec, WireError};
