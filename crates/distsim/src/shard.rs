//! Cross-shard boundary exchange for [`crate::ExecutionMode::Sharded`].
//!
//! Under sharded execution each shard runs a round locally over the nodes it
//! owns (per the deterministic `dkc_graph::Partitioner` assignment) and then
//! ships the deliveries that cross a shard cut to the owning peer as one
//! [`BoundaryDelta`] frame per ordered shard pair. The frame is built from the
//! round's sparse frontier ∩ boundary set: only boundary senders that actually
//! broadcast this round contribute records.
//!
//! Like every other frame in this crate the delta travels through the
//! [`crate::wire`] format (length-prefixed, strict decode) and is validated
//! structurally on receipt: a frame naming the wrong shard pair or round, a
//! sender/receiver the owner table contradicts, or an adjacency position that
//! does not map back to the claimed sender is a [`ShardFrameError`] attributed
//! to the sending shard — never a panic. This is the same tofn-style
//! defensive-decode discipline the mailbox executor applies to node frames.

use serde::ser::{Serialize, SerializeStruct, Serializer};
use std::fmt;

use dkc_graph::{CsrGraph, NodeId};

use crate::wire::{WireCodec, WireError, WireReader};

/// One cross-shard delivery: the sending boundary node, the receiving node on
/// the destination shard, the receiver-local adjacency position of the arc the
/// message travelled on (what [`crate::program::Delivery::pos`] needs for the
/// delta-driven merge), and the payload.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundaryRecord<M> {
    /// Global id of the sending node (owned by the source shard).
    pub sender: u32,
    /// Global id of the receiving node (owned by the destination shard).
    pub receiver: u32,
    /// Receiver-local adjacency position of the arc `sender → receiver`.
    pub pos: u32,
    /// The payload.
    pub msg: M,
}

impl<M: Serialize> Serialize for BoundaryRecord<M> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("BoundaryRecord", 4)?;
        s.serialize_field("sender", &self.sender)?;
        s.serialize_field("receiver", &self.receiver)?;
        s.serialize_field("pos", &self.pos)?;
        s.serialize_field("msg", &self.msg)?;
        s.end()
    }
}

impl<M: WireCodec> WireCodec for BoundaryRecord<M> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let sender = r.read_u32()?;
        let receiver = r.read_u32()?;
        let pos = r.read_u32()?;
        let msg = M::decode(r)?;
        Ok(BoundaryRecord {
            sender,
            receiver,
            pos,
            msg,
        })
    }
}

/// One round's worth of cross-shard deliveries from `src_shard` to
/// `dst_shard`, exchanged as a single wire frame per ordered shard pair.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundaryDelta<M> {
    /// The shard that produced these deliveries.
    pub src_shard: u32,
    /// The shard that owns every receiver in [`BoundaryDelta::records`].
    pub dst_shard: u32,
    /// The 1-based round the deliveries belong to.
    pub round: u64,
    /// The deliveries, in the deterministic order the source shard's frontier
    /// walk produced them.
    pub records: Vec<BoundaryRecord<M>>,
}

impl<M: Serialize> Serialize for BoundaryDelta<M> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("BoundaryDelta", 4)?;
        s.serialize_field("src_shard", &self.src_shard)?;
        s.serialize_field("dst_shard", &self.dst_shard)?;
        s.serialize_field("round", &self.round)?;
        s.serialize_field("records", &self.records)?;
        s.end()
    }
}

impl<M: WireCodec> WireCodec for BoundaryDelta<M> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let src_shard = r.read_u32()?;
        let dst_shard = r.read_u32()?;
        let round = r.read_u64()?;
        let records = Vec::decode(r)?;
        Ok(BoundaryDelta {
            src_shard,
            dst_shard,
            round,
            records,
        })
    }
}

/// Structural rejection of a decoded [`BoundaryDelta`], attributed to the
/// sending shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFrameError {
    /// The frame names a different shard pair than the link it arrived on.
    ShardMismatch {
        got_src: u32,
        got_dst: u32,
        want_src: u32,
        want_dst: u32,
    },
    /// The frame's round does not match the round being exchanged.
    RoundMismatch { got: u64, want: u64 },
    /// A record names a node outside the graph's node range.
    NodeOutOfRange { node: u32 },
    /// A record's sender is not owned by the frame's source shard.
    ForeignSender { sender: u32, owner: u32 },
    /// A record's receiver is not owned by the frame's destination shard.
    ForeignReceiver { receiver: u32, owner: u32 },
    /// A record's adjacency position is out of range for the receiver, or the
    /// arc at that position does not come from the claimed sender.
    BadArc {
        sender: u32,
        receiver: u32,
        pos: u32,
    },
}

impl fmt::Display for ShardFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardFrameError::ShardMismatch {
                got_src,
                got_dst,
                want_src,
                want_dst,
            } => write!(
                f,
                "frame claims shard pair {got_src}→{got_dst}, link is {want_src}→{want_dst}"
            ),
            ShardFrameError::RoundMismatch { got, want } => {
                write!(f, "frame is for round {got}, exchange is round {want}")
            }
            ShardFrameError::NodeOutOfRange { node } => {
                write!(f, "node id {node} outside graph range")
            }
            ShardFrameError::ForeignSender { sender, owner } => {
                write!(f, "sender {sender} is owned by shard {owner}, not the source shard")
            }
            ShardFrameError::ForeignReceiver { receiver, owner } => write!(
                f,
                "receiver {receiver} is owned by shard {owner}, not the destination shard"
            ),
            ShardFrameError::BadArc {
                sender,
                receiver,
                pos,
            } => write!(
                f,
                "adjacency position {pos} of receiver {receiver} does not carry an arc from {sender}"
            ),
        }
    }
}

impl std::error::Error for ShardFrameError {}

impl<M> BoundaryDelta<M> {
    /// Validates a decoded frame against the link it arrived on (`want_src →
    /// want_dst`, `want_round`), the graph topology, and the node → shard
    /// `owner` table. Rejects — without panicking — any frame whose structural
    /// claims a hostile or buggy peer shard could not truthfully make.
    pub fn validate(
        &self,
        want_src: u32,
        want_dst: u32,
        want_round: u64,
        graph: &CsrGraph,
        owner: &[u32],
    ) -> Result<(), ShardFrameError> {
        if self.src_shard != want_src || self.dst_shard != want_dst {
            return Err(ShardFrameError::ShardMismatch {
                got_src: self.src_shard,
                got_dst: self.dst_shard,
                want_src,
                want_dst,
            });
        }
        if self.round != want_round {
            return Err(ShardFrameError::RoundMismatch {
                got: self.round,
                want: want_round,
            });
        }
        let n = owner.len();
        for rec in &self.records {
            if rec.sender as usize >= n {
                return Err(ShardFrameError::NodeOutOfRange { node: rec.sender });
            }
            if rec.receiver as usize >= n {
                return Err(ShardFrameError::NodeOutOfRange { node: rec.receiver });
            }
            let sender_owner = owner[rec.sender as usize];
            if sender_owner != self.src_shard {
                return Err(ShardFrameError::ForeignSender {
                    sender: rec.sender,
                    owner: sender_owner,
                });
            }
            let receiver_owner = owner[rec.receiver as usize];
            if receiver_owner != self.dst_shard {
                return Err(ShardFrameError::ForeignReceiver {
                    receiver: rec.receiver,
                    owner: receiver_owner,
                });
            }
            let neighbors = graph.neighbors(NodeId(rec.receiver));
            let from = neighbors.get(rec.pos as usize);
            if from != Some(&NodeId(rec.sender)) {
                return Err(ShardFrameError::BadArc {
                    sender: rec.sender,
                    receiver: rec.receiver,
                    pos: rec.pos,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, payload_len, FRAME_HEADER_BYTES};
    use dkc_graph::{Partitioner, WeightedGraph};

    fn sample_graph() -> CsrGraph {
        let mut g = WeightedGraph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        g.add_edge(NodeId(3), NodeId(4), 1.0);
        g.add_edge(NodeId(4), NodeId(0), 1.0);
        CsrGraph::from_graph(&g)
    }

    /// A delta whose records are genuinely cross-shard for the given plan.
    fn sample_delta(graph: &CsrGraph, owner: &[u32], src: u32, dst: u32) -> BoundaryDelta<u64> {
        let mut records = Vec::new();
        for v in graph.nodes() {
            if owner[v.index()] != src {
                continue;
            }
            for &u in graph.neighbors(v) {
                if owner[u.index()] != dst {
                    continue;
                }
                // Receiver-local position of the reverse arc u → v.
                let pos = graph
                    .neighbors(u)
                    .iter()
                    .position(|&t| t == v)
                    .expect("undirected graph has the reverse arc")
                    as u32;
                records.push(BoundaryRecord {
                    sender: v.0,
                    receiver: u.0,
                    pos,
                    msg: 1000 + u64::from(v.0),
                });
            }
        }
        BoundaryDelta {
            src_shard: src,
            dst_shard: dst,
            round: 3,
            records,
        }
    }

    fn cross_shard_setup() -> (CsrGraph, Vec<u32>, u32, u32) {
        let graph = sample_graph();
        let part = Partitioner::new(2, 42);
        let owner: Vec<u32> = (0..graph.num_nodes())
            .map(|i| part.shard_of(NodeId::new(i)) as u32)
            .collect();
        // The 5-cycle always has at least one cut arc in each direction under
        // any 2-shard assignment that uses both shards; fall back to a manual
        // split if the hash happened to put everything on one shard.
        let owner = if owner.iter().all(|&o| o == owner[0]) {
            vec![0, 1, 0, 1, 0]
        } else {
            owner
        };
        (graph, owner, 0, 1)
    }

    #[test]
    fn delta_round_trips_through_the_wire() {
        let (graph, owner, src, dst) = cross_shard_setup();
        let delta = sample_delta(&graph, &owner, src, dst);
        assert!(!delta.records.is_empty(), "setup must produce cut arcs");
        let frame = encode_frame(&delta);
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload_len(&delta));
        let back: BoundaryDelta<u64> = decode_frame(&frame, 1 << 20).expect("decode");
        assert_eq!(back, delta);
        back.validate(src, dst, 3, &graph, &owner).expect("valid");
    }

    #[test]
    fn empty_delta_round_trips() {
        let delta = BoundaryDelta::<u64> {
            src_shard: 1,
            dst_shard: 0,
            round: 9,
            records: Vec::new(),
        };
        let frame = encode_frame(&delta);
        let back: BoundaryDelta<u64> = decode_frame(&frame, 1 << 20).expect("decode");
        assert_eq!(back, delta);
    }

    #[test]
    fn truncated_frame_is_rejected_not_panicking() {
        let (graph, owner, src, dst) = cross_shard_setup();
        let delta = sample_delta(&graph, &owner, src, dst);
        let frame = encode_frame(&delta);
        for cut in 0..frame.len() {
            let err = decode_frame::<BoundaryDelta<u64>>(&frame[..cut], 1 << 20);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let (graph, owner, src, dst) = cross_shard_setup();
        let delta = sample_delta(&graph, &owner, src, dst);
        let frame = encode_frame(&delta);
        assert!(matches!(
            decode_frame::<BoundaryDelta<u64>>(&frame, 4).unwrap_err(),
            WireError::Oversized { .. }
        ));
    }

    #[test]
    fn hostile_record_count_does_not_overallocate() {
        // Declares u32::MAX records with a near-empty body: must fail with
        // Truncated, not abort on allocation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes()); // src
        payload.extend_from_slice(&1u32.to_le_bytes()); // dst
        payload.extend_from_slice(&1u64.to_le_bytes()); // round
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // record count
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(
            decode_frame::<BoundaryDelta<u64>>(&frame, 1 << 20).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn validate_rejects_wrong_link_and_round() {
        let (graph, owner, src, dst) = cross_shard_setup();
        let delta = sample_delta(&graph, &owner, src, dst);
        assert!(matches!(
            delta.validate(dst, src, 3, &graph, &owner).unwrap_err(),
            ShardFrameError::ShardMismatch { .. }
        ));
        assert!(matches!(
            delta.validate(src, dst, 4, &graph, &owner).unwrap_err(),
            ShardFrameError::RoundMismatch { got: 3, want: 4 }
        ));
    }

    #[test]
    fn validate_rejects_forged_records() {
        let (graph, owner, src, dst) = cross_shard_setup();
        let delta = sample_delta(&graph, &owner, src, dst);

        let mut out_of_range = delta.clone();
        out_of_range.records[0].receiver = 99;
        assert!(matches!(
            out_of_range
                .validate(src, dst, 3, &graph, &owner)
                .unwrap_err(),
            ShardFrameError::NodeOutOfRange { node: 99 }
        ));

        // Claim a sender the destination shard owns itself.
        let mut foreign = delta.clone();
        let local = (0..owner.len()).find(|&i| owner[i] == dst).unwrap() as u32;
        foreign.records[0].sender = local;
        let err = foreign.validate(src, dst, 3, &graph, &owner).unwrap_err();
        assert!(
            matches!(
                err,
                ShardFrameError::ForeignSender { .. } | ShardFrameError::BadArc { .. }
            ),
            "{err}"
        );

        let mut bad_pos = delta.clone();
        bad_pos.records[0].pos = u32::MAX;
        assert!(matches!(
            bad_pos.validate(src, dst, 3, &graph, &owner).unwrap_err(),
            ShardFrameError::BadArc { .. }
        ));
    }

    #[test]
    fn frame_errors_display() {
        let e = ShardFrameError::ForeignReceiver {
            receiver: 7,
            owner: 2,
        };
        assert!(e.to_string().contains("receiver 7"));
        let e = ShardFrameError::ShardMismatch {
            got_src: 0,
            got_dst: 1,
            want_src: 1,
            want_dst: 0,
        };
        assert!(e.to_string().contains("0→1"));
    }
}
