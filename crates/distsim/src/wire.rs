//! Byte-level wire format for protocol messages.
//!
//! Where [`crate::message::MessageSize`] *estimates* the CONGEST cost of a
//! message in bits, this module *measures* it: every message type encodes to
//! a deterministic, untagged, little-endian byte payload via the (vendored)
//! serde [`Serialize`] trait, and frames on the wire carry a `u32` length
//! prefix ahead of that payload. The mailbox executor exchanges exactly
//! these frames between shard threads; the lockstep executors run the same
//! encoder through a counting serializer so `wire_bits` is byte-identical in
//! every execution mode.
//!
//! Encoding rules (fixed, no self-description):
//! - integers and floats: fixed width, little-endian (`u8` = 1 byte, `u32` =
//!   4 bytes, `u64`/`usize` = 8 bytes, `f64` = 8 bytes, ...)
//! - `bool`: 1 byte, `0` or `1` (anything else is rejected on decode)
//! - `()`: zero bytes
//! - `Option<T>`: 1 flag byte (`0`/`1`) then the payload if present
//! - sequences (`Vec<T>`, slices): `u32` element count then the elements
//! - structs: fields in declaration order, no names or framing
//! - enums: a `u8` discriminant written as the first struct field (by each
//!   type's hand-written impl), then the variant's fields
//! - `&str`/`String`: `u32` byte length then the UTF-8 bytes
//!
//! Decoding is strict in the tofn style: a frame that is truncated, longer
//! than the configured cap, carries trailing garbage, or contains an invalid
//! byte is a [`WireError`] attributed to the sending peer — never a panic.

use serde::ser::{Serialize, SerializeSeq, SerializeStruct, Serializer};
use std::fmt;

use crate::message::{MessageSize, QuantizedValue};

/// Bytes of framing overhead per message: the `u32` payload-length prefix.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Slack allowed between the `MessageSize` *estimate* and the measured
/// encoded size before [`debug_assert_estimate_covers`] flags the estimate
/// as an undercount. Covers fixed per-message framing the analytical count
/// deliberately ignores (an enum tag plus one 64-bit field's rounding).
pub const WIRE_SLACK_BITS: usize = 72;

/// Decode-side rejection of a received frame. Carried per sending peer by
/// the mailbox executor instead of panicking (tofn-style fault attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the declared payload (or the header) did.
    Truncated,
    /// The declared payload length exceeds the configured cap.
    Oversized { len: usize, max: usize },
    /// Bytes remained after the payload decoded cleanly.
    TrailingBytes { remaining: usize },
    /// A boolean byte that was neither `0` nor `1`.
    BadBool(u8),
    /// An `Option` flag byte that was neither `0` nor `1`.
    BadOptionFlag(u8),
    /// An enum discriminant no variant of `ty` claims.
    BadTag { ty: &'static str, tag: u8 },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
            WireError::BadBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            WireError::BadOptionFlag(b) => write!(f, "invalid option flag byte {b:#04x}"),
            WireError::BadTag { ty, tag } => write!(f, "invalid {ty} tag {tag}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A message that can round-trip through the wire format: serde-encodable
/// and hand-decodable from the byte layout documented at module level.
pub trait WireCodec: Serialize + Sized {
    /// Decodes one value from the reader, consuming exactly its bytes.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

// ---------------------------------------------------------------------------
// Encoding: a byte-buffer serializer and its size-counting twin.
// ---------------------------------------------------------------------------

/// Serializer producing the wire payload bytes.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

fn seq_count(len: Option<usize>) -> u32 {
    // lint: allow(D04) — encode side: all in-tree Serialize impls pass Some(len); a None is a local bug, not hostile input
    let n = len.expect("wire format requires sized sequences");
    // lint: allow(D04) — encode side: a >u32::MAX-element message is a sender bug caught before bytes hit the wire
    u32::try_from(n).expect("sequence length exceeds u32 wire range")
}

impl<'a> Serializer for &'a mut WireWriter {
    type Ok = ();
    // Encoding into memory cannot fail; the error type exists only to share
    // the `Result` shape with decoding.
    type Error = WireError;
    type SerializeSeq = &'a mut WireWriter;
    type SerializeStruct = &'a mut WireWriter;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.buf.push(v as u8);
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        // lint: allow(D04) — encode side: sender-controlled string length, not hostile decode input
        let len = u32::try_from(v.len()).expect("string length exceeds u32 wire range");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.buf.push(0);
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), WireError> {
        self.buf.push(1);
        value.serialize(&mut *self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, WireError> {
        self.buf.extend_from_slice(&seq_count(len).to_le_bytes());
        Ok(self)
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, WireError> {
        Ok(self)
    }

    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.buf.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl SerializeSeq for &mut WireWriter {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl SerializeStruct for &mut WireWriter {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

/// Counting twin of [`WireWriter`]: computes the encoded payload size
/// without materialising bytes, so lockstep executors can charge measured
/// `wire_bits` with no allocation per message.
#[derive(Default)]
pub struct WireSizer {
    bytes: usize,
}

impl WireSizer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl<'a> Serializer for &'a mut WireSizer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = &'a mut WireSizer;
    type SerializeStruct = &'a mut WireSizer;

    fn serialize_bool(self, _v: bool) -> Result<(), WireError> {
        self.bytes += 1;
        Ok(())
    }

    fn serialize_i64(self, _v: i64) -> Result<(), WireError> {
        self.bytes += 8;
        Ok(())
    }

    fn serialize_u64(self, _v: u64) -> Result<(), WireError> {
        self.bytes += 8;
        Ok(())
    }

    fn serialize_f64(self, _v: f64) -> Result<(), WireError> {
        self.bytes += 8;
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.bytes += 4 + v.len();
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.bytes += 1;
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), WireError> {
        self.bytes += 1;
        value.serialize(&mut *self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, WireError> {
        let _ = seq_count(len);
        self.bytes += 4;
        Ok(self)
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, WireError> {
        Ok(self)
    }

    fn serialize_i8(self, _v: i8) -> Result<(), WireError> {
        self.bytes += 1;
        Ok(())
    }

    fn serialize_i16(self, _v: i16) -> Result<(), WireError> {
        self.bytes += 2;
        Ok(())
    }

    fn serialize_i32(self, _v: i32) -> Result<(), WireError> {
        self.bytes += 4;
        Ok(())
    }

    fn serialize_u8(self, _v: u8) -> Result<(), WireError> {
        self.bytes += 1;
        Ok(())
    }

    fn serialize_u16(self, _v: u16) -> Result<(), WireError> {
        self.bytes += 2;
        Ok(())
    }

    fn serialize_u32(self, _v: u32) -> Result<(), WireError> {
        self.bytes += 4;
        Ok(())
    }

    fn serialize_f32(self, _v: f32) -> Result<(), WireError> {
        self.bytes += 4;
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl SerializeSeq for &mut WireSizer {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl SerializeStruct for &mut WireSizer {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Strict cursor over a received payload.
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

macro_rules! reader_int {
    ($($name:ident => $t:ty),* $(,)?) => {$(
        pub fn $name(&mut self) -> Result<$t, WireError> {
            const N: usize = std::mem::size_of::<$t>();
            let raw = self.take(N)?;
            // lint: allow(D04) — take(N) either errs or returns exactly N bytes, so try_into cannot fail
            Ok(<$t>::from_le_bytes(raw.try_into().expect("length checked")))
        }
    )*};
}

impl<'a> WireReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    reader_int! {
        read_u8 => u8,
        read_u16 => u16,
        read_u32 => u32,
        read_u64 => u64,
        read_i8 => i8,
        read_i16 => i16,
        read_i32 => i32,
        read_i64 => i64,
    }

    pub fn read_f32(&mut self) -> Result<f32, WireError> {
        // lint: allow(D04) — take(4) either errs or returns exactly 4 bytes, so try_into cannot fail
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        // lint: allow(D04) — take(8) either errs or returns exactly 8 bytes, so try_into cannot fail
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    pub fn read_bool(&mut self) -> Result<bool, WireError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// The `Option` presence flag.
    pub fn read_option_flag(&mut self) -> Result<bool, WireError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadOptionFlag(b)),
        }
    }

    /// A `u32` sequence/string length.
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        Ok(self.read_u32()? as usize)
    }
}

// ---------------------------------------------------------------------------
// Frame helpers.
// ---------------------------------------------------------------------------

/// Encodes a message's payload bytes (no length prefix).
pub fn encode_payload<M: Serialize + ?Sized>(msg: &M) -> Vec<u8> {
    let mut w = WireWriter::new();
    // lint: allow(D04) — encode side: WireWriter appends to an in-memory Vec and never returns Err
    msg.serialize(&mut w).expect("wire encoding is infallible");
    w.into_bytes()
}

/// Measures a message's encoded payload size in bytes without encoding.
pub fn payload_len<M: Serialize + ?Sized>(msg: &M) -> usize {
    let mut s = WireSizer::new();
    // lint: allow(D04) — encode side: WireSizer only counts bytes and never returns Err
    msg.serialize(&mut s).expect("wire sizing is infallible");
    s.bytes()
}

/// Encodes a complete frame: `u32` little-endian payload length + payload.
pub fn encode_frame<M: Serialize + ?Sized>(msg: &M) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    // lint: allow(D04) — encode side: CONGEST payloads are O(log n) bits; a >4 GiB payload is a sender bug
    let len = u32::try_from(payload.len()).expect("payload length exceeds u32 wire range");
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one complete frame, enforcing the payload-length cap and exact
/// consumption: a short buffer is [`WireError::Truncated`], a declared
/// length above `max_payload` is [`WireError::Oversized`], and any unread
/// bytes after a clean decode are [`WireError::TrailingBytes`].
pub fn decode_frame<M: WireCodec>(frame: &[u8], max_payload: usize) -> Result<M, WireError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    // lint: allow(D04) — the length guard above proves frame[..4] is exactly 4 bytes, so try_into cannot fail
    let len = u32::from_le_bytes(frame[..FRAME_HEADER_BYTES].try_into().expect("len")) as usize;
    if len > max_payload {
        return Err(WireError::Oversized {
            len,
            max: max_payload,
        });
    }
    let body = &frame[FRAME_HEADER_BYTES..];
    if body.len() < len {
        return Err(WireError::Truncated);
    }
    if body.len() > len {
        return Err(WireError::TrailingBytes {
            remaining: body.len() - len,
        });
    }
    let mut r = WireReader::new(body);
    let msg = M::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(msg)
}

/// Measured on-the-wire cost of a message in bits: length prefix + payload.
pub fn frame_bits(payload_len: usize) -> usize {
    8 * (FRAME_HEADER_BYTES + payload_len)
}

/// Debug-only check that a message's `MessageSize` estimate does not
/// undercount its measured encoding beyond [`WIRE_SLACK_BITS`] of framing
/// slack. Release builds compile this away.
#[inline]
pub fn debug_assert_estimate_covers<M: Serialize + MessageSize>(msg: &M) {
    if cfg!(debug_assertions) {
        let measured = 8 * payload_len(msg);
        let allowed = msg.size_bits().next_multiple_of(8) + WIRE_SLACK_BITS;
        debug_assert!(
            measured <= allowed,
            "MessageSize estimate undercounts wire encoding: measured {measured} bits, \
             estimate allows {allowed} bits"
        );
    }
}

// ---------------------------------------------------------------------------
// Codec impls for primitive message types.
// ---------------------------------------------------------------------------

impl WireCodec for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_bool()
    }
}

impl WireCodec for u32 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_u32()
    }
}

impl WireCodec for u64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_u64()
    }
}

impl WireCodec for usize {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.read_u64()? as usize)
    }
}

impl WireCodec for f32 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_f32()
    }
}

impl WireCodec for f64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_f64()
    }
}

impl WireCodec for () {
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.read_option_flag()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        // A hostile length cannot force a huge allocation: capacity is
        // bounded by the bytes actually present.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

// `bits` rides in one byte: it is `⌈log₂ |Λ|⌉`, far below 256 for any real
// parameterisation, and a single byte keeps the measured encoding within
// `WIRE_SLACK_BITS` of the analytical per-message charge.
impl Serialize for QuantizedValue {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // lint: allow(D04) — encode side: bits = ⌈log₂ |Λ|⌉ < 256 by construction; decode reads the byte fallibly
        let bits = u8::try_from(self.bits).expect("QuantizedValue.bits exceeds wire range");
        let mut s = serializer.serialize_struct("QuantizedValue", 2)?;
        s.serialize_field("bits", &bits)?;
        s.serialize_field("value", &self.value)?;
        s.end()
    }
}

impl WireCodec for QuantizedValue {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bits = r.read_u8()? as usize;
        let value = r.read_f64()?;
        Ok(QuantizedValue { value, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<M: WireCodec + PartialEq + std::fmt::Debug>(msg: &M) {
        let frame = encode_frame(msg);
        let back: M = decode_frame(&frame, 1 << 20).expect("decode");
        assert_eq!(&back, msg);
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload_len(msg));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u32);
        round_trip(&u32::MAX);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&1.5f32);
        round_trip(&-0.0f64);
        round_trip(&true);
        round_trip(&false);
        round_trip(&());
    }

    #[test]
    fn unit_encodes_to_zero_bytes() {
        assert_eq!(payload_len(&()), 0);
        assert_eq!(encode_payload(&()), Vec::<u8>::new());
        assert_eq!(frame_bits(payload_len(&())), 32);
    }

    #[test]
    fn options_and_vecs_round_trip() {
        round_trip(&Some(7u32));
        round_trip(&Option::<u32>::None);
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<f64>::new());
        round_trip(&vec![Some(1u32), None, Some(3)]);
    }

    #[test]
    fn quantized_value_round_trips_and_is_72_bits() {
        let q = QuantizedValue {
            value: 123.456,
            bits: 17,
        };
        round_trip(&q);
        assert_eq!(8 * payload_len(&q), 72);
        debug_assert_estimate_covers(&q);
    }

    #[test]
    fn integer_widths_are_preserved() {
        assert_eq!(payload_len(&1u32), 4);
        assert_eq!(payload_len(&1u64), 8);
        assert_eq!(payload_len(&1usize), 8);
        assert_eq!(payload_len(&1.0f32), 4);
        assert_eq!(payload_len(&1.0f64), 8);
        assert_eq!(payload_len(&true), 1);
        assert_eq!(payload_len(&vec![1u32, 2]), 4 + 8);
    }

    #[test]
    fn sizer_matches_writer_for_nested_shapes() {
        let msg = vec![Some(vec![1u64, 2, 3]), None];
        assert_eq!(payload_len(&msg), encode_payload(&msg).len());
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert_eq!(
            decode_frame::<u32>(&[1, 0], 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut frame = encode_frame(&7u64);
        frame.truncate(frame.len() - 3);
        assert_eq!(
            decode_frame::<u64>(&frame, 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let frame = encode_frame(&vec![0u64; 32]);
        let err = decode_frame::<Vec<u64>>(&frame, 16).unwrap_err();
        assert_eq!(
            err,
            WireError::Oversized {
                len: 4 + 32 * 8,
                max: 16
            }
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = encode_frame(&7u32);
        frame.push(0xAB);
        assert_eq!(
            decode_frame::<u32>(&frame, 64).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn interior_overrun_is_trailing_bytes_not_panic() {
        // A Vec declaring fewer elements than the payload holds leaves
        // unread bytes behind, which strict decoding rejects.
        let mut frame = encode_frame(&vec![1u32, 2]);
        // Patch the element count from 2 down to 1 (count sits after the
        // 4-byte frame header).
        frame[FRAME_HEADER_BYTES] = 1;
        assert_eq!(
            decode_frame::<Vec<u32>>(&frame, 64).unwrap_err(),
            WireError::TrailingBytes { remaining: 4 }
        );
    }

    #[test]
    fn bad_bool_and_option_bytes_are_rejected() {
        let frame = vec![1, 0, 0, 0, 7];
        assert_eq!(
            decode_frame::<bool>(&frame, 64).unwrap_err(),
            WireError::BadBool(7)
        );
        assert_eq!(
            decode_frame::<Option<u32>>(&frame, 64).unwrap_err(),
            WireError::BadOptionFlag(7)
        );
    }

    #[test]
    fn hostile_vec_length_does_not_overallocate() {
        // Declares u32::MAX elements with a 4-byte body: must fail with
        // Truncated, not abort on allocation.
        let mut frame = Vec::new();
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(
            decode_frame::<Vec<u32>>(&frame, 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn estimate_slack_holds_for_primitives() {
        debug_assert_estimate_covers(&1u32);
        debug_assert_estimate_covers(&1u64);
        debug_assert_estimate_covers(&1.0f64);
        debug_assert_estimate_covers(&true);
        debug_assert_estimate_covers(&());
        debug_assert_estimate_covers(&Some(1u64));
        debug_assert_estimate_covers(&vec![1u64, 2, 3]);
    }
}
