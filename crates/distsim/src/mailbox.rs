//! The mailbox executor backend ([`crate::ExecutionMode::Mailbox`]).
//!
//! Dense round semantics over a message-passing runtime: the node array is
//! split into contiguous **shards**, one scoped thread per shard, and every
//! message crosses shards as a **wire-encoded byte frame** (length prefix +
//! payload, see [`crate::wire`]) through that shard's bounded mpsc mailbox —
//! there is no shared outbox snapshot. The main thread acts as the
//! coordinator: it merges the shards' per-round partial statistics, decides
//! continuation (round budget / quiescence), and releases the next round.
//!
//! ## Why results are byte-identical to lockstep
//!
//! * Send-side fault decisions and accounting reuse the exact
//!   `produce_outgoing` the lockstep executors run, so `messages`,
//!   `payload_bits`, `wire_bits` and the drop counters agree by construction
//!   (the measured `wire_bits` uses the counting serializer, whose output
//!   length equals the encoder's).
//! * Each delivered copy travels on exactly one CSR arc, and each arc's
//!   frames are produced by exactly one sender thread, so per-arc FIFO order
//!   is preserved end-to-end; the receiver then **stable-sorts** its inbox by
//!   receiver-local arc position, reproducing the dense delivery order
//!   (neighbour-list order, unicast batches in batch order).
//! * Every non-halted, non-crashed node steps every round (dense
//!   activation), and round barriers are enforced by per-shard end-of-round
//!   markers plus the coordinator's control release.
//!
//! ## Backpressure without deadlock
//!
//! Mailboxes are bounded. A sender whose `try_send` hits a full mailbox
//! drains its *own* mailbox into a local pending buffer before retrying, so
//! any cycle of blocked senders contains a shard that is making progress;
//! the pending buffer is folded into the inboxes after the shard's send
//! phase, keeping receive-side effects out of the send phase.
//!
//! ## Decode failures
//!
//! A frame that fails [`crate::wire::decode_frame`] (truncated, over the
//! [`crate::NetworkBuilder::max_frame_bytes`] cap, trailing garbage, bad
//! bytes) is dropped and **attributed to the sending node** in
//! [`crate::Network::decode_faults`] — tofn-style per-peer fault attribution
//! instead of a panic. In-tree programs never produce such frames; the
//! accounting exists for the protocol boundary.

use crate::message::Tamper;
use crate::metrics::RoundStats;
use crate::network::{produce_outgoing, Network, NodeCell};
use crate::program::{Delivery, NodeProgram, Outgoing};
use crate::wire::{decode_frame, encode_frame};
use dkc_graph::{CsrGraph, NodeId};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// One unit of shard-to-shard traffic.
enum Packet {
    /// A delivered message copy on one arc. `pos` is the receiver-local arc
    /// position (what dense delivery reports in [`Delivery::pos`]); `bytes`
    /// is the complete wire frame, shared between the copies of a broadcast.
    Frame {
        sender: u32,
        receiver: u32,
        pos: u32,
        bytes: Arc<[u8]>,
    },
    /// The sending shard has finished its send phase for this round.
    EndOfRound,
}

/// Per-shard, per-round statistics merged by the coordinator.
#[derive(Clone, Copy, Default)]
struct PartialStats {
    messages: usize,
    payload_bits: usize,
    wire_bits: usize,
    max_message_bits: usize,
    sending_nodes: usize,
    changed_nodes: usize,
    node_updates: usize,
    dropped_loss: usize,
    dropped_burst: usize,
    dropped_partition: usize,
    dropped_byzantine: usize,
}

/// Shard-to-coordinator messages.
enum ToCoordinator {
    /// End of one round on one shard.
    Round(PartialStats),
    /// Shard shutdown: the node ids charged with decode failures (one entry
    /// per rejected frame).
    Done(Vec<u32>),
}

/// Sends one packet, draining our own mailbox into `pending` while the
/// destination mailbox is full (see module docs on deadlock freedom).
fn send_with_backpressure(
    tx: &SyncSender<Packet>,
    rx: &Receiver<Packet>,
    pending: &mut Vec<Packet>,
    mut pkt: Packet,
) {
    loop {
        match tx.try_send(pkt) {
            Ok(()) => return,
            Err(TrySendError::Full(p)) => {
                pkt = p;
                let mut drained = false;
                while let Ok(incoming) = rx.try_recv() {
                    pending.push(incoming);
                    drained = true;
                }
                if !drained {
                    std::thread::yield_now();
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("mailbox receiver disconnected mid-run")
            }
        }
    }
}

/// Runs up to `max_rounds` rounds under the mailbox backend, starting after
/// `net.round`. With `stop_on_quiescent`, stops after the first round in
/// which no node changed. Returns the number of rounds executed; metrics,
/// round counter, and decode-fault attribution are updated on `net`.
pub(crate) fn run_mailbox<P: NodeProgram>(
    net: &mut Network<P>,
    max_rounds: usize,
    stop_on_quiescent: bool,
) -> usize {
    if max_rounds == 0 {
        return 0;
    }
    // Wall-clock audit (dkc-lint D02 allowlist): timing-only, accumulated via
    // RunMetrics::add_elapsed; deterministic counters never see it.
    let started = Instant::now();
    let threads = net
        .mailbox_threads
        .unwrap_or_else(rayon::current_num_threads);
    let Network {
        graph,
        cells,
        round,
        metrics,
        faults,
        crash_schedule,
        byz_accusation_schedule,
        quarantine_schedule,
        mailbox_capacity,
        max_frame_bytes,
        decode_faults,
        ..
    } = net;
    let start_round = *round;
    let n = cells.len();

    if n == 0 {
        // Degenerate topology: rounds are empty barriers, identical to dense.
        let mut executed = 0;
        for _ in 0..max_rounds {
            *round += 1;
            executed += 1;
            metrics.push(RoundStats {
                round: *round,
                ..RoundStats::default()
            });
            if stop_on_quiescent {
                break;
            }
        }
        metrics.add_elapsed(started.elapsed());
        return executed;
    }

    let faults = *faults;
    let graph: &CsrGraph = graph;
    let max_payload = *max_frame_bytes;
    let chunk = n.div_ceil(threads.clamp(1, n));
    let shards: Vec<&mut [NodeCell<P>]> = cells.chunks_mut(chunk).collect();
    let num_shards = shards.len();

    let mut mailbox_txs: Vec<SyncSender<Packet>> = Vec::with_capacity(num_shards);
    let mut mailbox_rxs: Vec<Receiver<Packet>> = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let (tx, rx) = sync_channel((*mailbox_capacity).max(1));
        mailbox_txs.push(tx);
        mailbox_rxs.push(rx);
    }
    let (coord_tx, coord_rx) = channel::<ToCoordinator>();
    let mut ctrl_txs: Vec<Sender<bool>> = Vec::with_capacity(num_shards);
    let mut ctrl_rxs: Vec<Receiver<bool>> = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let (tx, rx) = channel::<bool>();
        ctrl_txs.push(tx);
        ctrl_rxs.push(rx);
    }

    let mut executed = 0usize;
    rayon::scope(|s| {
        let mut ctrl_iter = ctrl_rxs.into_iter();
        let mut rx_iter = mailbox_rxs.into_iter();
        for (shard, shard_cells) in shards.into_iter().enumerate() {
            let base = shard * chunk;
            let my_rx = rx_iter.next().expect("one mailbox per shard");
            let ctrl_rx = ctrl_iter.next().expect("one control channel per shard");
            let peers: Vec<SyncSender<Packet>> = mailbox_txs.clone();
            let coord = coord_tx.clone();
            s.spawn(move |_| {
                shard_main::<P>(ShardArgs {
                    graph,
                    faults,
                    cells: shard_cells,
                    base,
                    chunk,
                    num_shards,
                    start_round,
                    max_rounds,
                    max_payload,
                    my_rx,
                    ctrl_rx,
                    peers,
                    coord,
                });
            });
        }
        drop(mailbox_txs);
        drop(coord_tx);

        // Coordinator: merge shard partials per round, publish RoundStats,
        // and release (or stop) the next round.
        for k in 1..=max_rounds {
            let r = start_round + k;
            let mut merged = PartialStats::default();
            let mut seen = 0usize;
            while seen < num_shards {
                match coord_rx.recv().expect("shard exited before round end") {
                    ToCoordinator::Round(p) => {
                        merged.messages += p.messages;
                        merged.payload_bits += p.payload_bits;
                        merged.wire_bits += p.wire_bits;
                        merged.max_message_bits = merged.max_message_bits.max(p.max_message_bits);
                        merged.sending_nodes += p.sending_nodes;
                        merged.changed_nodes += p.changed_nodes;
                        merged.node_updates += p.node_updates;
                        merged.dropped_loss += p.dropped_loss;
                        merged.dropped_burst += p.dropped_burst;
                        merged.dropped_partition += p.dropped_partition;
                        merged.dropped_byzantine += p.dropped_byzantine;
                        seen += 1;
                    }
                    ToCoordinator::Done(_) => {
                        unreachable!("shard shut down before the final round")
                    }
                }
            }
            let stats = RoundStats {
                round: r,
                messages: merged.messages,
                payload_bits: merged.payload_bits,
                wire_bits: merged.wire_bits,
                max_message_bits: merged.max_message_bits,
                sending_nodes: merged.sending_nodes,
                changed_nodes: merged.changed_nodes,
                node_updates: merged.node_updates,
                dropped_loss: merged.dropped_loss,
                dropped_burst: merged.dropped_burst,
                dropped_partition: merged.dropped_partition,
                dropped_byzantine: merged.dropped_byzantine,
                crashed_nodes: crash_schedule.partition_point(|&cr| (cr as usize) <= r),
                byzantine_accusations: byz_accusation_schedule
                    .partition_point(|&ar| (ar as usize) <= r),
                quarantined_nodes: quarantine_schedule.partition_point(|&qr| (qr as usize) <= r),
                boundary_bits: 0,
                boundary_nodes: 0,
            };
            metrics.push(stats);
            executed = k;
            let stop = k == max_rounds || (stop_on_quiescent && stats.changed_nodes == 0);
            for tx in &ctrl_txs {
                tx.send(!stop).expect("shard exited before control release");
            }
            if stop {
                break;
            }
        }

        // Collect shutdown reports and fold decode-failure attribution.
        let mut done = 0usize;
        while done < num_shards {
            match coord_rx.recv().expect("shard exited without Done") {
                ToCoordinator::Done(faulters) => {
                    if !faulters.is_empty() && decode_faults.len() != n {
                        decode_faults.resize(n, 0);
                    }
                    for sender in faulters {
                        decode_faults[sender as usize] += 1;
                    }
                    done += 1;
                }
                ToCoordinator::Round(_) => unreachable!("round partial after final round"),
            }
        }
    });

    *round = start_round + executed;
    metrics.add_elapsed(started.elapsed());
    executed
}

/// Everything one shard thread needs.
struct ShardArgs<'a, P: NodeProgram> {
    graph: &'a CsrGraph,
    faults: Option<crate::faults::FaultPlan>,
    cells: &'a mut [NodeCell<P>],
    /// Global index of this shard's first node.
    base: usize,
    /// Shard width (last shard may be narrower).
    chunk: usize,
    num_shards: usize,
    start_round: usize,
    max_rounds: usize,
    max_payload: usize,
    my_rx: Receiver<Packet>,
    ctrl_rx: Receiver<bool>,
    peers: Vec<SyncSender<Packet>>,
    coord: Sender<ToCoordinator>,
}

fn shard_main<P: NodeProgram>(args: ShardArgs<'_, P>) {
    let ShardArgs {
        graph,
        faults,
        cells,
        base,
        chunk,
        num_shards,
        start_round,
        max_rounds,
        max_payload,
        my_rx,
        ctrl_rx,
        peers,
        coord,
    } = args;
    let link_faults = faults.filter(crate::faults::FaultPlan::affects_links);
    let byz = faults
        .and_then(|f| f.byzantine)
        .filter(|b| b.fraction > 0.0);
    let mut faulters: Vec<u32> = Vec::new();
    // Lazily allocated per-shard multicast dedup stamps (arc-indexed; this
    // shard only ever stamps its own senders' disjoint arc ranges).
    let mut stamps: Vec<u64> = Vec::new();
    let mut pending: Vec<Packet> = Vec::new();

    for k in 1..=max_rounds {
        let r = start_round + k;
        let round_stamp = r as u64;
        let mut partial = PartialStats::default();

        // Send phase: every local node broadcasts; frames go out per arc.
        for li in 0..cells.len() {
            let i = base + li;
            // Fresh inbox for this round's deliveries (dense clears at
            // receive time; all receive-side effects here happen after the
            // send loop, so clearing up front is equivalent).
            cells[li].inbox.clear();
            let (out, acct) = produce_outgoing::<P>(graph, faults, r, i, true, &mut cells[li]);
            if acct.messages > 0 {
                partial.sending_nodes += 1;
                partial.messages += acct.messages;
                partial.payload_bits += acct.payload_bits;
                partial.wire_bits += acct.wire_bits;
                partial.max_message_bits = partial.max_message_bits.max(acct.max_message_bits);
            }
            partial.dropped_loss += acct.dropped_loss;
            partial.dropped_burst += acct.dropped_burst;
            partial.dropped_partition += acct.dropped_partition;
            partial.dropped_byzantine += acct.dropped_byzantine;

            let sender = NodeId::new(i);
            let arc_base = graph.arc_offset(sender);
            let dropped = |to: NodeId, idx: usize| -> bool {
                link_faults.is_some_and(|f| f.drops(r, sender, to, idx))
            };
            // A byzantine lie/equivocate sender encodes a **per-arc tampered
            // frame** in place of the shared broadcast frame (equivocation
            // sends different bytes to different receivers); tampering is
            // length-preserving, so the wire accounting from
            // `produce_outgoing` still matches the encoder exactly. An active
            // spammer emits each frame `spam` times on the same arc.
            let spam = byz.as_ref().map_or(1, |b| b.spam_factor(r, sender));
            let tampered = |m: &P::Message, v: NodeId| -> Option<Arc<[u8]>> {
                let salt = byz.as_ref()?.tamper_salt(r, sender, v)?;
                let frame: Arc<[u8]> = encode_frame(&m.tamper(salt)).into();
                debug_assert_eq!(
                    frame.len(),
                    encode_frame(m).len(),
                    "tamper must be length-preserving (see message::Tamper)"
                );
                Some(frame)
            };
            // Emit the frame copies on the sender-local arc `q` (the
            // receiver-local position comes from the paired reverse arc, as
            // in the sparse scatter). Copies to crashed/halted receivers are
            // still sent — the sender cannot know — and discarded by the
            // receiving shard.
            let emit = |pending: &mut Vec<Packet>, q: usize, m: &P::Message, bytes: &Arc<[u8]>| {
                let v = graph.neighbors(sender)[q];
                let pos = (graph.reverse_arc(arc_base + q) - graph.arc_offset(v)) as u32;
                let bytes = tampered(m, v).unwrap_or_else(|| Arc::clone(bytes));
                for _ in 0..spam {
                    let pkt = Packet::Frame {
                        sender: i as u32,
                        receiver: v.0,
                        pos,
                        bytes: Arc::clone(&bytes),
                    };
                    send_with_backpressure(&peers[v.index() / chunk], &my_rx, pending, pkt);
                }
            };
            match &out {
                Outgoing::Silent => {}
                Outgoing::Broadcast(m) => {
                    let bytes: Arc<[u8]> = encode_frame(m).into();
                    for (q, &v) in graph.neighbors(sender).iter().enumerate() {
                        if !dropped(v, 0) {
                            emit(&mut pending, q, m, &bytes);
                        }
                    }
                }
                Outgoing::Multicast(m, targets) => {
                    if !targets.is_empty() {
                        if stamps.len() != graph.num_arcs() {
                            stamps = vec![0; graph.num_arcs()];
                        }
                        let bytes: Arc<[u8]> = encode_frame(m).into();
                        for &t in targets {
                            if dropped(t, 0) {
                                continue;
                            }
                            for q in graph.neighbor_positions(sender, t) {
                                // Deduplicate repeated target entries by arc,
                                // exactly like the dense stamp scatter.
                                if stamps[arc_base + q] == round_stamp {
                                    continue;
                                }
                                stamps[arc_base + q] = round_stamp;
                                emit(&mut pending, q, m, &bytes);
                            }
                        }
                    }
                }
                Outgoing::Unicast(msgs) => {
                    for (idx, (t, m)) in msgs.iter().enumerate() {
                        if dropped(*t, idx) {
                            continue;
                        }
                        let bytes: Arc<[u8]> = encode_frame(m).into();
                        // Dense delivery hands a unicast to every parallel
                        // arc towards the target; mirror that.
                        for q in graph.neighbor_positions(sender, *t) {
                            emit(&mut pending, q, m, &bytes);
                        }
                    }
                }
            }
        }
        for tx in &peers {
            send_with_backpressure(tx, &my_rx, &mut pending, Packet::EndOfRound);
        }

        // Receive phase: fold buffered + incoming frames into local inboxes
        // until every shard's end-of-round marker (including our own) has
        // arrived.
        let mut eor_seen = 0usize;
        let handle = |pkt: Packet,
                      cells: &mut [NodeCell<P>],
                      faulters: &mut Vec<u32>,
                      eor_seen: &mut usize| {
            match pkt {
                Packet::EndOfRound => *eor_seen += 1,
                Packet::Frame {
                    sender,
                    receiver,
                    pos,
                    bytes,
                } => {
                    let cell = &mut cells[receiver as usize - base];
                    let v = NodeId::new(receiver as usize);
                    // Dense semantics: a halted or crashed receiver's copies
                    // count as delivered but are never seen by the program.
                    if cell.program.halted() || faults.is_some_and(|f| f.crashed(r, v)) {
                        return;
                    }
                    match decode_frame::<P::Message>(&bytes, max_payload) {
                        Ok(msg) => cell.inbox.push(Delivery {
                            sender: NodeId::new(sender as usize),
                            pos,
                            msg,
                        }),
                        Err(_rejected) => faulters.push(sender),
                    }
                }
            }
        };
        for pkt in pending.drain(..) {
            handle(pkt, &mut *cells, &mut faulters, &mut eor_seen);
        }
        while eor_seen < num_shards {
            let pkt = my_rx.recv().expect("peer shard exited mid-round");
            handle(pkt, &mut *cells, &mut faulters, &mut eor_seen);
        }

        // Step phase: every non-halted, non-crashed local node steps, its
        // inbox stable-sorted into dense delivery order (per-arc FIFO is
        // preserved by the channels, so equal positions keep batch order).
        for li in 0..cells.len() {
            let v = NodeId::new(base + li);
            let cell = &mut cells[li];
            if cell.program.halted() || faults.is_some_and(|f| f.crashed(r, v)) {
                continue;
            }
            cell.inbox.sort_by_key(|d| d.pos);
            let ctx = crate::program::NodeContext::new(graph, v, r);
            let NodeCell { program, inbox } = cell;
            partial.node_updates += 1;
            if program.receive(&ctx, inbox) {
                partial.changed_nodes += 1;
            }
        }

        coord
            .send(ToCoordinator::Round(partial))
            .expect("coordinator exited mid-run");
        if !ctrl_rx.recv().expect("coordinator exited mid-run") {
            break;
        }
    }
    coord
        .send(ToCoordinator::Done(std::mem::take(&mut faulters)))
        .expect("coordinator exited before shutdown");
}
