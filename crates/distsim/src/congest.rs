//! CONGEST-model message-size budgets.
//!
//! In the CONGEST model every message is limited to `O(log n)` bits. The
//! paper's protocols meet this budget when edge weights are integers of
//! polynomial magnitude, or when surviving numbers are quantized to powers of
//! `(1 + λ)` (Section III-C, "Message Size").

/// Returns a CONGEST message budget in bits for an `n`-node network:
/// `words · ⌈log₂(max(n, 2))⌉`. The paper's messages contain a constant number
/// of numbers; `words` is that constant (use 1 for the compact elimination
/// procedure, 2 for leader-election pairs, etc.).
///
/// # Panics
///
/// Panics if `words == 0`: a zero-word budget is 0 bits, which would make
/// every [`satisfies_congest`] check vacuously true for any observed size.
pub fn congest_budget_bits(n: usize, words: usize) -> usize {
    assert!(words >= 1, "a CONGEST budget needs at least one word");
    let n = n.max(2);
    let log = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    words * log.max(1)
}

/// Checks whether an observed maximum message size satisfies a CONGEST budget
/// with a constant-factor allowance `c` (i.e. `max_bits ≤ c · budget`).
///
/// # Panics
///
/// Panics if `words == 0` or `c == 0`: either would degenerate the budget to
/// 0 bits and the check to a tautology (`c == 0` additionally inverts it —
/// any non-empty message would "fail" an unlimited allowance).
pub fn satisfies_congest(max_message_bits: usize, n: usize, words: usize, c: usize) -> bool {
    assert!(c >= 1, "the constant-factor allowance must be at least 1");
    max_message_bits <= c * congest_budget_bits(n, words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_log_n() {
        assert_eq!(congest_budget_bits(2, 1), 1);
        assert_eq!(congest_budget_bits(1024, 1), 10);
        assert_eq!(congest_budget_bits(1025, 1), 11);
        assert_eq!(congest_budget_bits(1_000_000, 2), 40);
    }

    #[test]
    fn budget_handles_tiny_networks() {
        assert!(congest_budget_bits(0, 1) >= 1);
        assert!(congest_budget_bits(1, 1) >= 1);
    }

    #[test]
    fn satisfaction_check() {
        // 64-bit doubles in a 1M-node network: 64 <= 4 * 20.
        assert!(satisfies_congest(64, 1_000_000, 1, 4));
        assert!(!satisfies_congest(64, 16, 1, 4));
    }

    /// Regression: `words == 0` used to return a 0-bit budget, making
    /// `satisfies_congest(bits, n, 0, c)` vacuously true for any size.
    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_words_budget_rejected() {
        let _ = congest_budget_bits(1024, 0);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_words_satisfaction_rejected() {
        let _ = satisfies_congest(64, 1024, 0, 4);
    }

    /// Regression: `c == 0` used to invert the check (any non-empty message
    /// "failed" an unlimited allowance) instead of being rejected.
    #[test]
    #[should_panic(expected = "allowance must be at least 1")]
    fn zero_allowance_rejected() {
        let _ = satisfies_congest(64, 1024, 1, 0);
    }
}
