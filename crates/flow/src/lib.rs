//! # dkc-flow
//!
//! Exact (centralized) ground-truth algorithms used to *evaluate* the
//! distributed protocols:
//!
//! * [`dinic`] — Dinic's max-flow / min-cut on floating-point capacities.
//! * [`densest`] — Goldberg-style exact maximum-density subgraph via
//!   Dinkelbach iteration over min-cuts (handles weights and self-loops, which
//!   quotient graphs require).
//! * [`decomposition`] — the exact diminishingly-dense decomposition
//!   (Definition II.3): repeatedly extract the maximal densest subset, form the
//!   quotient graph, and recurse; yields the maximal density `r(v)` of every
//!   node.
//! * [`orientation`] — exact min-max edge orientation for unit-weight graphs
//!   (flow feasibility + orientation extraction) and the fractional LP lower
//!   bound `ρ*` for the weighted case.
//!
//! None of this is part of the paper's *distributed* contribution — it is the
//! measurement substrate for approximation ratios in the test suite and the
//! experiment harness.

#![deny(deprecated)]

pub mod decomposition;
pub mod densest;
pub mod dinic;
pub mod orientation;

pub use decomposition::{dense_decomposition, DenseDecomposition};
pub use densest::{densest_subgraph, DensestSubgraph};
pub use dinic::Dinic;
pub use orientation::{
    exact_unit_orientation, fractional_orientation_lower_bound, ExactOrientation,
};
