//! Exact diminishingly-dense decomposition (Definition II.3) and the maximal
//! density `r(v)` of every node.
//!
//! The decomposition repeatedly extracts the **maximal densest subset** of the
//! current quotient graph: `B_0 = ∅`, `G_i = G \ B_{i-1}`, `S_i` = maximal
//! densest subset of `G_i`, `B_i = B_{i-1} ∪ S_i`. Every node `v ∈ S_i` gets
//! maximal density `r(v) = ρ_{G_i}(S_i)`. The sequence of layer densities is
//! strictly decreasing (Fact II.4), and `r(v) ≤ c(v) ≤ 2·r(v)`
//! (Lemma III.4 / Corollary III.6).

use crate::densest::densest_subgraph;
use dkc_graph::quotient::quotient;
use dkc_graph::{NodeId, WeightedGraph};

/// The exact diminishingly-dense decomposition of a graph.
#[derive(Clone, Debug)]
pub struct DenseDecomposition {
    /// `r(v)` — the maximal density of each node (indexed by node id).
    pub maximal_density: Vec<f64>,
    /// The layers `S_1, S_2, …` in extraction order (original node ids).
    pub layers: Vec<Vec<NodeId>>,
    /// The density of each layer, `ρ_{G_i}(S_i)` — strictly decreasing.
    pub layer_densities: Vec<f64>,
}

impl DenseDecomposition {
    /// The maximum density `ρ*` of the original graph (the first layer's
    /// density), or 0 for an empty graph.
    pub fn max_density(&self) -> f64 {
        self.layer_densities.first().copied().unwrap_or(0.0)
    }

    /// The layer index of a node (0-based), i.e. `i-1` where `v ∈ S_i`.
    pub fn layer_of(&self, v: NodeId) -> Option<usize> {
        self.layers.iter().position(|layer| layer.contains(&v))
    }
}

/// Computes the exact diminishingly-dense decomposition of `g`.
pub fn dense_decomposition(g: &WeightedGraph) -> DenseDecomposition {
    let n = g.num_nodes();
    let mut maximal_density = vec![0.0; n];
    let mut layers = Vec::new();
    let mut layer_densities = Vec::new();

    // Current quotient graph, plus the mapping from its node ids to originals.
    let mut current = g.clone();
    let mut current_to_original: Vec<NodeId> = (0..n).map(NodeId::new).collect();

    while current.num_nodes() > 0 {
        let densest = densest_subgraph(&current);
        let layer_nodes: Vec<NodeId> = densest
            .members
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| current_to_original[i])
            .collect();
        assert!(
            !layer_nodes.is_empty(),
            "densest subgraph of a non-empty graph must be non-empty"
        );
        if let Some(&prev) = layer_densities.last() {
            debug_assert!(
                densest.density < prev + 1e-6,
                "layer densities must be non-increasing: {} after {}",
                densest.density,
                prev
            );
        }
        for &v in &layer_nodes {
            maximal_density[v.index()] = densest.density;
        }
        layer_densities.push(densest.density);
        layers.push(layer_nodes);

        // Quotient away the layer.
        let q = quotient(&current, &densest.members);
        current_to_original = q
            .old_of_new
            .iter()
            .map(|&old| current_to_original[old.index()])
            .collect();
        current = q.graph;
    }

    DenseDecomposition {
        maximal_density,
        layers,
        layer_densities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::generators::{complete_graph, path_graph, planted_dense_community};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clique_is_a_single_layer() {
        let g = complete_graph(5);
        let d = dense_decomposition(&g);
        assert_eq!(d.layers.len(), 1);
        assert_eq!(d.layers[0].len(), 5);
        for v in 0..5 {
            assert!((d.maximal_density[v] - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn clique_with_pendant_has_two_layers() {
        let mut g = complete_graph(4);
        let p = g.add_node();
        g.add_unit_edge(NodeId(0), p);
        let d = dense_decomposition(&g);
        assert_eq!(d.layers.len(), 2);
        // Layer 1: the K4 with density 1.5.
        assert!((d.layer_densities[0] - 1.5).abs() < 1e-6);
        // Layer 2: the pendant node alone. Its edge to node 0 becomes a
        // self-loop in the quotient, so its maximal density is 1.
        assert!((d.layer_densities[1] - 1.0).abs() < 1e-6);
        assert!((d.maximal_density[p.index()] - 1.0).abs() < 1e-6);
        assert_eq!(d.layer_of(p), Some(1));
        assert_eq!(d.layer_of(NodeId(0)), Some(0));
    }

    #[test]
    fn layer_densities_strictly_decrease() {
        let mut rng = StdRng::seed_from_u64(17);
        let planted = planted_dense_community(80, 15, 0.05, 0.9, &mut rng);
        let d = dense_decomposition(&planted.graph);
        for w in d.layer_densities.windows(2) {
            assert!(
                w[1] < w[0] + 1e-9,
                "densities must strictly decrease: {:?}",
                d.layer_densities
            );
        }
        // Every node is assigned to exactly one layer.
        let total: usize = d.layers.iter().map(Vec::len).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn max_density_matches_densest_subgraph() {
        let mut rng = StdRng::seed_from_u64(23);
        let planted = planted_dense_community(60, 12, 0.05, 0.85, &mut rng);
        let d = dense_decomposition(&planted.graph);
        let ds = crate::densest::densest_subgraph(&planted.graph);
        assert!((d.max_density() - ds.density).abs() < 1e-6);
    }

    #[test]
    fn path_decomposition() {
        // P_4 has maximum density 3/4 (the whole path); then nothing remains.
        let g = path_graph(4);
        let d = dense_decomposition(&g);
        assert_eq!(d.layers.len(), 1);
        assert!((d.max_density() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = WeightedGraph::new(0);
        let d = dense_decomposition(&g);
        assert!(d.layers.is_empty());
        assert_eq!(d.max_density(), 0.0);
    }

    #[test]
    fn edgeless_graph_single_zero_layer() {
        let g = WeightedGraph::new(5);
        let d = dense_decomposition(&g);
        assert_eq!(d.layers.len(), 1);
        assert_eq!(d.layer_densities[0], 0.0);
        assert!(d.maximal_density.iter().all(|&r| r == 0.0));
    }

    /// Lemma III.4 / Corollary III.6: r(v) <= c(v) <= 2 r(v), where c(v) is the
    /// exact (weighted) coreness. Here we verify the weaker sanity property
    /// that r(v) is at most the weighted degree of v (since c(v) <= deg(v)).
    #[test]
    fn maximal_density_at_most_degree() {
        let mut rng = StdRng::seed_from_u64(31);
        let planted = planted_dense_community(50, 10, 0.1, 0.8, &mut rng);
        let d = dense_decomposition(&planted.graph);
        for v in planted.graph.nodes() {
            assert!(
                d.maximal_density[v.index()] <= planted.graph.degree(v) + 1e-6,
                "r({v}) = {} exceeds degree {}",
                d.maximal_density[v.index()],
                planted.graph.degree(v)
            );
        }
    }
}
