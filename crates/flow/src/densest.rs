//! Exact maximum-density subgraph via min-cuts (Goldberg's reduction with
//! edge-nodes, driven by Dinkelbach iteration).
//!
//! For a guess `g`, build the network
//!
//! ```text
//!   source ──w_e──▶ edge-node e ──∞──▶ each endpoint of e
//!   node v ──g──▶ sink
//! ```
//!
//! Then `max_S ( w(E(S)) − g·|S| ) = W − mincut`, where `W` is the total edge
//! weight, and the source side of a minimum cut (restricted to graph nodes) is
//! a maximizer. Dinkelbach iteration (`g ← ρ(S)` of the extracted maximizer)
//! converges to the maximum density `ρ*` in finitely many steps because each
//! `g` is the density of an actual subset and strictly increases.
//!
//! Self-loops are supported (an edge-node with a single endpoint arc), which is
//! required because the diminishingly-dense decomposition operates on quotient
//! graphs.

use crate::dinic::Dinic;
use dkc_graph::{NodeId, WeightedGraph};

/// Relative tolerance for density comparisons during Dinkelbach iteration.
const DENSITY_TOL: f64 = 1e-9;

/// The result of an exact densest-subgraph computation.
#[derive(Clone, Debug)]
pub struct DensestSubgraph {
    /// The maximum density `ρ* = max_S w(E(S)) / |S|`.
    pub density: f64,
    /// Indicator of the **maximal** densest subset (Fact II.1: it is unique and
    /// contains every densest subset).
    pub members: Vec<bool>,
}

impl DensestSubgraph {
    /// Number of nodes in the maximal densest subset.
    pub fn size(&self) -> usize {
        self.members.iter().filter(|&&b| b).count()
    }

    /// The members as a list of node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Internal: builds the guess-`g` cut network and returns
/// `(solver, source, sink, first_graph_node_index)`.
fn build_network(g: &WeightedGraph, guess: f64) -> (Dinic, usize, usize, usize) {
    let n = g.num_nodes();
    let edges: Vec<_> = g.edges().collect();
    let m = edges.len();
    // Layout: 0 = source, 1 = sink, 2..2+n = graph nodes, 2+n..2+n+m = edge nodes.
    let source = 0usize;
    let sink = 1usize;
    let node_base = 2usize;
    let edge_base = 2 + n;
    let mut net = Dinic::new(2 + n + m);
    for (idx, &(u, v, w)) in edges.iter().enumerate() {
        let e_node = edge_base + idx;
        net.add_edge(source, e_node, w);
        net.add_edge(e_node, node_base + u.index(), f64::INFINITY);
        if u != v {
            net.add_edge(e_node, node_base + v.index(), f64::INFINITY);
        }
    }
    for v in 0..n {
        net.add_edge(node_base + v, sink, guess);
    }
    (net, source, sink, node_base)
}

/// Extracts the graph-node indicator from a cut side.
fn members_from_cut(cut: &[bool], node_base: usize, n: usize) -> Vec<bool> {
    (0..n).map(|v| cut[node_base + v]).collect()
}

/// Computes the exact maximum density and the maximal densest subset of `g`.
///
/// Runs in `O(k · maxflow(n + m))` where `k` is the number of Dinkelbach
/// iterations (at most `n`, typically a handful). Intended for ground-truth
/// computation on the experiment workloads, not for huge graphs.
pub fn densest_subgraph(g: &WeightedGraph) -> DensestSubgraph {
    let n = g.num_nodes();
    if n == 0 {
        return DensestSubgraph {
            density: 0.0,
            members: Vec::new(),
        };
    }
    let total_w = g.total_edge_weight();
    if total_w <= 0.0 {
        // No edges: every subset has density 0; the maximal one is V.
        return DensestSubgraph {
            density: 0.0,
            members: vec![true; n],
        };
    }

    // Dinkelbach iteration starting from the density of the whole graph.
    let mut guess = g.density();
    let mut best_members = vec![true; n];
    loop {
        let (mut net, source, sink, node_base) = build_network(g, guess);
        let cut = net.max_flow(source, sink);
        let excess = total_w - cut; // = max_S ( w(E(S)) - guess*|S| )
        let members = members_from_cut(&net.min_cut_source_side(source), node_base, n);
        let size = members.iter().filter(|&&b| b).count();
        if size == 0 || excess <= DENSITY_TOL * (1.0 + total_w) {
            break;
        }
        let density = g.subset_edge_weight(&members) / size as f64;
        if density <= guess * (1.0 + DENSITY_TOL) {
            // No strict improvement: converged.
            best_members = members;
            break;
        }
        guess = density;
        best_members = members;
    }

    // Final pass at g = ρ*: the *maximal* min-cut source side is the maximal
    // densest subset.
    let rho = {
        let size = best_members.iter().filter(|&&b| b).count().max(1);
        g.subset_edge_weight(&best_members) / size as f64
    };
    let rho = rho.max(guess);
    let (mut net, source, sink, node_base) = build_network(g, rho);
    net.max_flow(source, sink);
    let maximal = members_from_cut(&net.max_cut_source_side(sink), node_base, n);
    let maximal_size = maximal.iter().filter(|&&b| b).count();
    let (density, members) = if maximal_size > 0 {
        let d = g.subset_edge_weight(&maximal) / maximal_size as f64;
        // Guard against numerical noise making the maximal side slightly worse.
        if d + DENSITY_TOL * (1.0 + rho) >= rho {
            (d, maximal)
        } else {
            (rho, best_members)
        }
    } else {
        (rho, best_members)
    };
    DensestSubgraph { density, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::generators::{complete_graph, path_graph, planted_dense_community, star_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force densest subset over all non-empty subsets (for tiny graphs).
    fn brute_force_density(g: &WeightedGraph) -> f64 {
        let n = g.num_nodes();
        assert!(n <= 16);
        let mut best = 0.0f64;
        for mask in 1u32..(1 << n) {
            let members: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if let Some(d) = g.density_of(&members) {
                best = best.max(d);
            }
        }
        best
    }

    #[test]
    fn clique_density() {
        let g = complete_graph(6);
        let result = densest_subgraph(&g);
        assert!((result.density - 2.5).abs() < 1e-6);
        assert_eq!(result.size(), 6);
    }

    #[test]
    fn path_density() {
        // Densest subset of a path P_n is the whole path: (n-1)/n.
        let g = path_graph(5);
        let result = densest_subgraph(&g);
        assert!((result.density - 0.8).abs() < 1e-6);
        assert_eq!(result.size(), 5);
    }

    #[test]
    fn star_density() {
        // Star S_n: densest subset is the whole star with density (n-1)/n.
        let g = star_graph(7);
        let result = densest_subgraph(&g);
        assert!((result.density - 6.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn clique_plus_pendant_excludes_pendant() {
        // K_5 plus a pendant node attached to node 0: the densest subset is K_5.
        let mut g = complete_graph(5);
        let p = g.add_node();
        g.add_unit_edge(NodeId(0), p);
        let result = densest_subgraph(&g);
        assert!((result.density - 2.0).abs() < 1e-6);
        assert_eq!(result.size(), 5);
        assert!(!result.members[p.index()]);
    }

    #[test]
    fn weighted_edges_dominate() {
        // A heavy edge {0,1} of weight 10 vs a unit triangle {2,3,4}: densest
        // subset is the heavy pair with density 5.
        let mut g = WeightedGraph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 10.0);
        g.add_unit_edge(NodeId(2), NodeId(3));
        g.add_unit_edge(NodeId(3), NodeId(4));
        g.add_unit_edge(NodeId(2), NodeId(4));
        let result = densest_subgraph(&g);
        assert!((result.density - 5.0).abs() < 1e-6);
        assert_eq!(result.size(), 2);
        assert!(result.members[0] && result.members[1]);
    }

    #[test]
    fn self_loops_contribute_to_density() {
        // A single node with a self-loop of weight 3 has density 3.
        let mut g = WeightedGraph::new(3);
        g.add_self_loop(NodeId(0), 3.0);
        g.add_unit_edge(NodeId(1), NodeId(2));
        let result = densest_subgraph(&g);
        assert!((result.density - 3.0).abs() < 1e-6);
        assert!(result.members[0]);
        assert!(!result.members[1]);
    }

    #[test]
    fn maximal_densest_subset_is_returned() {
        // Two disjoint triangles: both have density 1; the maximal densest
        // subset is their union (also density 1).
        let mut g = WeightedGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_unit_edge(NodeId(a), NodeId(b));
        }
        let result = densest_subgraph(&g);
        assert!((result.density - 1.0).abs() < 1e-6);
        assert_eq!(result.size(), 6, "expected the union of both triangles");
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(2..9);
            let mut g = WeightedGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.5) {
                        let w = rng.gen_range(1..5) as f64;
                        g.add_edge(NodeId::new(i), NodeId::new(j), w);
                    }
                }
            }
            let exact = brute_force_density(&g);
            let result = densest_subgraph(&g);
            assert!(
                (result.density - exact).abs() < 1e-6,
                "trial {trial}: flow-based {} vs brute force {exact}",
                result.density
            );
        }
    }

    #[test]
    fn planted_community_is_recovered() {
        let mut rng = StdRng::seed_from_u64(5);
        let planted = planted_dense_community(120, 20, 0.02, 0.9, &mut rng);
        let result = densest_subgraph(&planted.graph);
        assert!(result.density >= planted.planted_density - 1e-9);
        // The recovered set should be mostly the planted community.
        let overlap = result
            .members
            .iter()
            .zip(&planted.members)
            .filter(|&(&a, &b)| a && b)
            .count();
        assert!(overlap >= 15, "only {overlap} planted nodes recovered");
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = WeightedGraph::new(0);
        let r = densest_subgraph(&empty);
        assert_eq!(r.density, 0.0);
        assert_eq!(r.size(), 0);

        let edgeless = WeightedGraph::new(4);
        let r = densest_subgraph(&edgeless);
        assert_eq!(r.density, 0.0);
        assert_eq!(r.size(), 4);
    }
}
