//! Exact min-max edge orientation for unit-weight graphs, and the fractional
//! LP lower bound `ρ*` for the weighted case.
//!
//! For unit weights the problem is polynomial (Venkateswaran; Asahiro et al.):
//! an orientation with maximum in-degree ≤ k exists iff the bipartite flow
//! network `source → edge (cap 1) → endpoints (cap 1) → sink (cap k)` has a
//! flow saturating all edges, so the optimum is found by binary search on `k`.
//!
//! For general weights the problem is NP-hard, but the densest-subset LP value
//! `ρ*` is a lower bound on the optimum by weak duality (Section II of the
//! paper); [`fractional_orientation_lower_bound`] exposes it for the
//! approximation-ratio measurements.

use crate::densest::densest_subgraph;
use crate::dinic::Dinic;
use dkc_graph::{NodeId, WeightedGraph};

/// An exact solution of the unit-weight min-max orientation problem.
#[derive(Clone, Debug)]
pub struct ExactOrientation {
    /// The optimal maximum in-degree.
    pub max_in_degree: usize,
    /// One optimal orientation: for each non-loop edge `(u, v)` (as returned by
    /// `WeightedGraph::edges`), the endpoint the edge is assigned to (i.e. the
    /// head of the arc).
    pub assignment: Vec<(NodeId, NodeId, NodeId)>,
}

/// Feasibility test: can the unit edges of `edges` be oriented so every node
/// has in-degree ≤ k? If so, returns the assignment.
fn orient_with_bound(
    n: usize,
    edges: &[(NodeId, NodeId)],
    k: usize,
) -> Option<Vec<(NodeId, NodeId, NodeId)>> {
    let m = edges.len();
    // Layout: 0 = source, 1 = sink, 2..2+m = edge nodes, 2+m.. = graph nodes.
    let source = 0usize;
    let sink = 1usize;
    let edge_base = 2usize;
    let node_base = 2 + m;
    let mut net = Dinic::new(2 + m + n);
    let mut arc_ids = Vec::with_capacity(m);
    for (idx, &(u, v)) in edges.iter().enumerate() {
        net.add_edge(source, edge_base + idx, 1.0);
        let to_u = net.add_edge(edge_base + idx, node_base + u.index(), 1.0);
        let to_v = net.add_edge(edge_base + idx, node_base + v.index(), 1.0);
        arc_ids.push((to_u, to_v));
    }
    for v in 0..n {
        net.add_edge(node_base + v, sink, k as f64);
    }
    let flow = net.max_flow(source, sink);
    if (flow - m as f64).abs() > 1e-6 {
        return None;
    }
    let mut assignment = Vec::with_capacity(m);
    for (idx, &(u, v)) in edges.iter().enumerate() {
        let (to_u, to_v) = arc_ids[idx];
        let owner = if net.flow_on(to_u) > 0.5 {
            u
        } else {
            debug_assert!(net.flow_on(to_v) > 0.5, "edge {idx} unassigned");
            v
        };
        assignment.push((u, v, owner));
    }
    Some(assignment)
}

/// Computes an exact optimal orientation of a **unit-weight** graph.
///
/// # Panics
/// Panics if the graph has self-loops or non-unit edge weights.
pub fn exact_unit_orientation(g: &WeightedGraph) -> ExactOrientation {
    assert!(
        g.is_unit_weighted(),
        "exact orientation requires a unit-weight graph without self-loops"
    );
    let n = g.num_nodes();
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    if edges.is_empty() {
        return ExactOrientation {
            max_in_degree: 0,
            assignment: Vec::new(),
        };
    }
    // Binary search the smallest feasible k in [1, max_degree].
    let mut hi = g
        .nodes()
        .map(|v| g.unweighted_degree(v))
        .max()
        .unwrap_or(0)
        .max(1);
    let mut lo = 1usize;
    let mut best = orient_with_bound(n, &edges, hi).expect("k = max degree is always feasible");
    while lo < hi {
        let mid = (lo + hi) / 2;
        match orient_with_bound(n, &edges, mid) {
            Some(a) => {
                best = a;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    ExactOrientation {
        max_in_degree: lo,
        assignment: best,
    }
}

/// The fractional optimum of the min-max orientation LP, which equals the
/// maximum subgraph density `ρ*` (LP duality, Section II). It lower-bounds the
/// optimal integral orientation for arbitrary weights.
pub fn fractional_orientation_lower_bound(g: &WeightedGraph) -> f64 {
    densest_subgraph(g).density
}

/// Computes the maximum weighted in-degree induced by an edge assignment
/// (a list of `(u, v, owner)` triples).
pub fn max_weighted_in_degree(
    n: usize,
    assignment: &[(NodeId, NodeId, NodeId)],
    weight_of: impl Fn(NodeId, NodeId) -> f64,
) -> f64 {
    let mut load = vec![0.0f64; n];
    for &(u, v, owner) in assignment {
        debug_assert!(owner == u || owner == v, "owner must be an endpoint");
        load[owner.index()] += weight_of(u, v);
    }
    load.iter().fold(0.0, |a, &b| a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    fn check_assignment_covers_all_edges(g: &WeightedGraph, o: &ExactOrientation) {
        assert_eq!(o.assignment.len(), g.num_edges());
        let load = {
            let mut load = vec![0usize; g.num_nodes()];
            for &(u, v, owner) in &o.assignment {
                assert!(owner == u || owner == v);
                load[owner.index()] += 1;
            }
            load
        };
        assert_eq!(load.iter().max().copied().unwrap_or(0), o.max_in_degree);
    }

    #[test]
    fn path_orientation_optimum_is_one() {
        let g = path_graph(6);
        let o = exact_unit_orientation(&g);
        assert_eq!(o.max_in_degree, 1);
        check_assignment_covers_all_edges(&g, &o);
    }

    #[test]
    fn cycle_orientation_optimum_is_one() {
        let g = cycle_graph(7);
        let o = exact_unit_orientation(&g);
        assert_eq!(o.max_in_degree, 1);
        check_assignment_covers_all_edges(&g, &o);
    }

    #[test]
    fn star_orientation_optimum_is_one() {
        // Orient every spoke towards the leaves.
        let g = star_graph(9);
        let o = exact_unit_orientation(&g);
        assert_eq!(o.max_in_degree, 1);
        check_assignment_covers_all_edges(&g, &o);
    }

    #[test]
    fn clique_orientation_optimum() {
        // K_n has m = n(n-1)/2 edges; optimum is ceil(m-related density):
        // for K_5, density 2, and an Eulerian-style orientation gives 2.
        let g = complete_graph(5);
        let o = exact_unit_orientation(&g);
        assert_eq!(o.max_in_degree, 2);
        check_assignment_covers_all_edges(&g, &o);

        // K_4: 6 edges over 4 nodes; optimum 2 (ceil(3/2)... verified by flow).
        let g4 = complete_graph(4);
        let o4 = exact_unit_orientation(&g4);
        assert_eq!(o4.max_in_degree, 2);
    }

    #[test]
    fn optimum_at_least_ceil_of_density() {
        let g = complete_graph(6);
        let o = exact_unit_orientation(&g);
        let rho = fractional_orientation_lower_bound(&g);
        assert!((rho - 2.5).abs() < 1e-6);
        assert!(o.max_in_degree as f64 >= rho - 1e-9);
        assert_eq!(o.max_in_degree, 3);
    }

    #[test]
    fn empty_graph_orientation() {
        let g = WeightedGraph::new(4);
        let o = exact_unit_orientation(&g);
        assert_eq!(o.max_in_degree, 0);
        assert!(o.assignment.is_empty());
    }

    #[test]
    fn max_weighted_in_degree_helper() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        g.add_edge(NodeId(1), NodeId(2), 3.0);
        let assignment = vec![
            (NodeId(0), NodeId(1), NodeId(1)),
            (NodeId(1), NodeId(2), NodeId(1)),
        ];
        let m = max_weighted_in_degree(3, &assignment, |u, v| {
            g.neighbors(u)
                .iter()
                .find(|&&(x, _)| x == v)
                .map(|&(_, w)| w)
                .unwrap()
        });
        assert_eq!(m, 5.0);
    }

    #[test]
    #[should_panic]
    fn weighted_graph_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        let _ = exact_unit_orientation(&g);
    }
}
