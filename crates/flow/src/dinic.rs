//! Dinic's maximum-flow algorithm with `f64` capacities.

use std::collections::VecDeque;

/// Tolerance below which a residual capacity is treated as zero.
const FLOW_EPS: f64 = 1e-12;

#[derive(Clone, Debug)]
struct Edge {
    to: usize,
    cap: f64,
}

/// A max-flow problem instance / solver (Dinic's algorithm).
///
/// Capacities are `f64`; a relative tolerance of `1e-12` is used to decide
/// saturation, which is ample for the integer-ish weights used throughout the
/// experiments.
#[derive(Clone, Debug)]
pub struct Dinic {
    /// Forward and backward edges interleaved: edge `i` and `i ^ 1` are a pair.
    edges: Vec<Edge>,
    /// Adjacency: indices into `edges` per node.
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Creates a flow network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Dinic {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` (and a residual
    /// reverse edge of capacity 0). Returns the edge index, usable with
    /// [`Dinic::flow_on`] after solving.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(cap >= 0.0 && cap.is_finite() || cap == f64::INFINITY);
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0.0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// The flow currently routed through the edge returned by
    /// [`Dinic::add_edge`] (equal to the reverse edge's residual capacity).
    pub fn flow_on(&self, edge_id: usize) -> f64 {
        self.edges[edge_id ^ 1].cap
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v] {
                let e = &self.edges[eid];
                if e.cap > FLOW_EPS && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, pushed: f64) -> f64 {
        if v == t {
            return pushed;
        }
        while self.iter[v] < self.adj[v].len() {
            let eid = self.adj[v][self.iter[v]];
            let (to, cap) = {
                let e = &self.edges[eid];
                (e.to, e.cap)
            };
            if cap > FLOW_EPS && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > FLOW_EPS {
                    self.edges[eid].cap -= d;
                    self.edges[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t`, mutating the residual
    /// network in place. May be called once per instance.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t);
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= FLOW_EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After [`Dinic::max_flow`], returns the set of nodes reachable from `s`
    /// in the residual network — the source side of a minimum cut (the
    /// *minimal* such side).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v] {
                let e = &self.edges[eid];
                if e.cap > FLOW_EPS && !seen[e.to] {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// After [`Dinic::max_flow`], returns the complement of the set of nodes
    /// that can reach `t` in the residual network — the source side of the
    /// *maximal* minimum cut. Useful for extracting the unique **maximal**
    /// optimizer in the densest-subgraph reduction (Fact II.1).
    pub fn max_cut_source_side(&self, t: usize) -> Vec<bool> {
        let n = self.num_nodes();
        // Backward reachability to t over residual edges: u reaches t if there
        // is an edge u -> x with residual capacity and x reaches t.
        let mut reaches_t = vec![false; n];
        let mut queue = VecDeque::new();
        reaches_t[t] = true;
        queue.push_back(t);
        // Need reverse adjacency over residual arcs: arc u->x exists if
        // edges[eid] from u has cap > 0. We scan x's incident pair edges: for
        // edge pair (e, e^1), e: u->x with cap, e^1: x->u. From x we can find u
        // via e^1.to when edges[e].cap > 0.
        while let Some(x) = queue.pop_front() {
            for &eid in &self.adj[x] {
                // eid is an arc x -> y; its pair eid^1 is y -> x.
                let pair = eid ^ 1;
                let y = self.edges[eid].to;
                // Arc y -> x is `pair`; it has residual capacity edges[pair].cap.
                if self.edges[pair].cap > FLOW_EPS && !reaches_t[y] {
                    reaches_t[y] = true;
                    queue.push_back(y);
                }
            }
        }
        reaches_t.iter().map(|&r| !r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_path_network() {
        // s=0, t=3; two disjoint paths of capacity 3 and 2.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3.0);
        d.add_edge(1, 3, 3.0);
        d.add_edge(0, 2, 2.0);
        d.add_edge(2, 3, 2.0);
        assert_eq!(d.max_flow(0, 3), 5.0);
    }

    #[test]
    fn bottleneck_network() {
        // Classic diamond with a cross edge.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10.0);
        d.add_edge(0, 2, 10.0);
        d.add_edge(1, 2, 1.0);
        d.add_edge(1, 3, 4.0);
        d.add_edge(2, 3, 9.0);
        assert_eq!(d.max_flow(0, 3), 13.0);
    }

    #[test]
    fn min_cut_side_is_consistent() {
        let mut d = Dinic::new(4);
        let e1 = d.add_edge(0, 1, 1.0);
        d.add_edge(1, 2, 5.0);
        d.add_edge(2, 3, 1.0);
        let flow = d.max_flow(0, 3);
        assert_eq!(flow, 1.0);
        assert_eq!(d.flow_on(e1), 1.0);
        let side = d.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Cut capacity across the partition equals the flow value.
    }

    #[test]
    fn min_and_max_cut_sides_bracket_all_min_cuts() {
        // Two saturated edges in series: both {0} and {0,1} are min cuts.
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 1.0);
        d.add_edge(1, 2, 1.0);
        let f = d.max_flow(0, 2);
        assert_eq!(f, 1.0);
        let small = d.min_cut_source_side(0);
        let large = d.max_cut_source_side(2);
        assert_eq!(small, vec![true, false, false]);
        assert_eq!(large, vec![true, true, false]);
    }

    #[test]
    fn fractional_capacities() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 0.5);
        d.add_edge(0, 1, 0.25);
        d.add_edge(1, 2, 1.0);
        let f = d.max_flow(0, 2);
        assert!((f - 0.75).abs() < 1e-9);
    }

    #[test]
    fn disconnected_source_and_sink() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(2, 3, 1.0);
        assert_eq!(d.max_flow(0, 3), 0.0);
    }

    #[test]
    fn infinite_capacity_edges() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, f64::INFINITY);
        d.add_edge(1, 2, 2.5);
        assert_eq!(d.max_flow(0, 2), 2.5);
    }

    #[test]
    fn larger_random_network_conservation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        let mut d = Dinic::new(n);
        let mut ids = Vec::new();
        for _ in 0..300 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                ids.push((u, v, d.add_edge(u, v, rng.gen_range(0.0..5.0))));
            }
        }
        let flow = d.max_flow(0, n - 1);
        assert!(flow >= 0.0);
        // Flow conservation at intermediate nodes.
        let mut net = vec![0.0f64; n];
        for &(u, v, id) in &ids {
            let f = d.flow_on(id);
            net[u] -= f;
            net[v] += f;
        }
        for v in 1..n - 1 {
            assert!(
                net[v].abs() < 1e-6,
                "conservation violated at {v}: {}",
                net[v]
            );
        }
        assert!((net[n - 1] - flow).abs() < 1e-6);
        assert!((net[0] + flow).abs() < 1e-6);
    }
}
