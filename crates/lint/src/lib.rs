//! # dkc-lint
//!
//! Workspace determinism & wire-safety static analysis.
//!
//! The whole reproduction rests on one invariant the compiler cannot see:
//! every execution mode (lockstep dense/sparse, parallel, mailbox) and every
//! checkpoint/resume must be **byte-identical**. That holds only if no
//! protocol or executor code consults a nondeterministic source — wall-clock
//! time, hash-map iteration order, ambient RNG — and no defensive decode
//! path can panic on hostile bytes. The proptests sample that discipline
//! after the fact; `dkc-lint` enforces it *structurally*, before merge.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p dkc-lint --                      # human file:line diagnostics
//! cargo run -p dkc-lint -- --json report.json   # + machine-readable report
//! cargo run -p dkc-lint -- --deny-all           # CI mode: warnings fail too
//! ```
//!
//! Rules are documented in [`rules`] (D01–D06 for Rust, with the
//! `// lint: allow(Dxx) — reason` escape hatch) and [`shell`] (S01–S02 for
//! `scripts/*.sh`). The tokenizer ([`lexer`]) is deliberately lightweight —
//! no `rustc` or `syn` dependency, fully offline like the rest of `vendor/`.

#![deny(deprecated)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod shell;
pub mod walk;

pub use report::LintReport;
pub use rules::{check_rust_file, Diagnostic, Severity};
pub use shell::check_shell_file;

use std::path::Path;

/// Lints every file the walker finds under `root`, returning the full report.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let ws = walk::collect(root)?;
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;

    for rel in ws.rust_files.iter() {
        let src = std::fs::read_to_string(root.join(rel))?;
        diagnostics.extend(check_rust_file(rel, &src));
        files_scanned += 1;
    }
    for rel in ws.shell_files.iter() {
        let src = std::fs::read_to_string(root.join(rel))?;
        diagnostics.extend(check_shell_file(rel, &src));
        files_scanned += 1;
    }

    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule, !a.allowed).cmp(&(&b.file, b.line, b.rule, !b.allowed))
    });
    Ok(LintReport {
        files_scanned,
        diagnostics,
    })
}
