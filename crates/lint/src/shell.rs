//! Shell-script checks for `scripts/*.sh` (the CI gates themselves).
//!
//! | rule | says |
//! |------|------|
//! | S01  | the script must set `set -euo pipefail` (a gate that keeps going after a failed step is not a gate) |
//! | S02  | no unquoted `$var` / `${var}` / `$@` / `$*` / `$1` expansions — word splitting on an unquoted path breaks the first time a temp dir contains a space |
//!
//! The scanner is a small quote-state machine, not a shell parser. It knows
//! the contexts where an unquoted expansion is *safe* and stays silent there:
//! double quotes, assignment words (`x=$y` does not word-split), `[[ … ]]`
//! conditionals, arithmetic `$(( … ))`, `case` words, and heredoc bodies.
//! Command substitution — including `"$(cmd "$arg")"` where the inner quotes
//! reset the outer quoting state — is scanned recursively. The same
//! `# lint: allow(S02) — reason` escape hatch as the Rust rules applies.

use crate::lexer::Comment;
use crate::rules::{apply_allows, Diagnostic, Raw};

/// Runs S01/S02 over one shell script.
pub fn check_shell_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    check_s01(src, &mut raw);
    let comments = scan_s02(src, &mut raw);
    apply_allows(path, &comments, raw)
}

fn check_s01(src: &str, raw: &mut Vec<Raw>) {
    let has_strict_mode = src.lines().any(|l| {
        let l = l.trim();
        !l.starts_with('#')
            && l.starts_with("set ")
            && l.contains("pipefail")
            && (l.contains("-euo") || (l.contains("-e") && l.contains("-u")))
    });
    if !has_strict_mode {
        raw.push(Raw {
            rule: "S01",
            line: 1,
            message: "script does not enable strict mode: add `set -euo pipefail` near \
                      the top so a failed step fails the script"
                .into(),
        });
    }
}

/// One quoting frame: the toplevel script or the inside of a `$( … )`.
struct Frame {
    /// Unclosed plain parentheses inside this substitution.
    paren_depth: usize,
    in_dquote: bool,
}

/// Scans for unquoted expansions, returning the comments encountered (for
/// allow-annotation matching).
fn scan_s02(src: &str, raw: &mut Vec<Raw>) -> Vec<Comment> {
    let b = src.as_bytes();
    let mut comments = Vec::new();
    let mut frames = vec![Frame {
        paren_depth: 0,
        in_dquote: false,
    }];
    let mut line = 1usize;
    let mut in_dbracket = false;
    let mut line_is_case = false;
    let mut line_start = true;
    let mut i = 0usize;

    // A pending heredoc delimiter: once the current line ends, skip lines
    // until one equals it.
    let mut heredoc: Option<String> = None;

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            line_start = true;
            line_is_case = false;
            i += 1;
            if let Some(delim) = heredoc.take() {
                // Consume lines until the delimiter line (inclusive).
                loop {
                    let end = b[i..]
                        .iter()
                        .position(|&ch| ch == b'\n')
                        .map_or(b.len(), |p| i + p);
                    let body_line = String::from_utf8_lossy(&b[i..end]);
                    let done = body_line.trim_end() == delim;
                    i = end;
                    if i < b.len() {
                        i += 1;
                        line += 1;
                    }
                    if done || i >= b.len() {
                        break;
                    }
                }
            }
            continue;
        }

        let in_dquote = frames.last().is_some_and(|f| f.in_dquote);

        if in_dquote {
            match c {
                b'"' => {
                    if let Some(f) = frames.last_mut() {
                        f.in_dquote = false;
                    }
                }
                b'\\' => i += 1,
                b'$' if i + 1 < b.len() && b[i + 1] == b'(' => {
                    // Substitution resets the quote state: "$(cmd "$x")".
                    if i + 2 < b.len() && b[i + 2] == b'(' {
                        // Arithmetic inside quotes: skip to the matching `))`.
                        i = skip_arith(b, i + 3);
                        continue;
                    }
                    frames.push(Frame {
                        paren_depth: 0,
                        in_dquote: false,
                    });
                    i += 1;
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        match c {
            b'#' if line_start
                || b.get(i.wrapping_sub(1))
                    .is_some_and(|p| p.is_ascii_whitespace()) =>
            {
                let end = b[i..]
                    .iter()
                    .position(|&ch| ch == b'\n')
                    .map_or(b.len(), |p| i + p);
                comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&b[i + 1..end]).into_owned(),
                    trailing: !line_start,
                });
                i = end;
                continue;
            }
            b'\'' => {
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'"' => {
                if let Some(f) = frames.last_mut() {
                    f.in_dquote = true;
                }
            }
            b'\\' => i += 1,
            b'[' if b.get(i + 1) == Some(&b'[') => {
                in_dbracket = true;
                i += 1;
            }
            b']' if b.get(i + 1) == Some(&b']') => {
                in_dbracket = false;
                i += 1;
            }
            b'<' if b.get(i + 1) == Some(&b'<') => {
                if b.get(i + 2) == Some(&b'<') {
                    i += 2; // herestring `<<<`: the word after is normal text
                } else {
                    // Heredoc: record the delimiter (quotes stripped).
                    let mut j = i + 2;
                    if b.get(j) == Some(&b'-') {
                        j += 1;
                    }
                    while b.get(j).is_some_and(|&ch| ch == b' ' || ch == b'\t') {
                        j += 1;
                    }
                    let mut delim = String::new();
                    while let Some(&ch) = b.get(j) {
                        if ch.is_ascii_whitespace() {
                            break;
                        }
                        if ch != b'\'' && ch != b'"' {
                            delim.push(ch as char);
                        }
                        j += 1;
                    }
                    if !delim.is_empty() {
                        heredoc = Some(delim);
                    }
                    i = j;
                    continue;
                }
            }
            b'(' => {
                if let Some(f) = frames.last_mut() {
                    f.paren_depth += 1;
                }
            }
            b')' => {
                let depth = frames.last().map_or(0, |f| f.paren_depth);
                if depth == 0 && frames.len() > 1 {
                    frames.pop();
                } else if let Some(f) = frames.last_mut() {
                    f.paren_depth = f.paren_depth.saturating_sub(1);
                }
            }
            b'$' => {
                match b.get(i + 1) {
                    Some(b'(') if b.get(i + 2) == Some(&b'(') => {
                        i = skip_arith(b, i + 3);
                        continue;
                    }
                    Some(b'(') => {
                        frames.push(Frame {
                            paren_depth: 0,
                            in_dquote: false,
                        });
                        i += 1;
                    }
                    Some(b'\'') | Some(b'"') => {
                        // `$'…'` / `$"…"` quoting: handled next iteration.
                    }
                    Some(&n)
                        if n == b'{'
                            || n == b'@'
                            || n == b'*'
                            || n.is_ascii_digit()
                            || n.is_ascii_alphabetic()
                            || n == b'_' =>
                    {
                        let name = expansion_name(b, i + 1);
                        if !(in_dbracket || line_is_case || in_assignment_word(b, i)) {
                            raw.push(Raw {
                                rule: "S02",
                                line,
                                message: format!(
                                    "unquoted `${name}`: word splitting and globbing apply — \
                                     double-quote the expansion (`\"${name}\"`)",
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }

        if !c.is_ascii_whitespace() {
            if line_start {
                // First word of the line: note `case` statements, whose
                // subject word is not split.
                let mut j = i;
                while b.get(j).is_some_and(|ch| ch.is_ascii_alphabetic()) {
                    j += 1;
                }
                if &b[i..j] == b"case" {
                    line_is_case = true;
                }
            }
            line_start = false;
        }
        i += 1;
    }
    comments
}

/// Skips past the `))` closing an arithmetic expansion starting after `$((`.
fn skip_arith(b: &[u8], mut i: usize) -> usize {
    let mut depth = 2usize;
    while i < b.len() && depth > 0 {
        match b[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// The variable name of the expansion starting at `b[at]` (for messages).
fn expansion_name(b: &[u8], at: usize) -> String {
    let mut out = String::new();
    let mut j = at;
    if b.get(j) == Some(&b'{') {
        out.push('{');
        j += 1;
        while let Some(&ch) = b.get(j) {
            out.push(ch as char);
            j += 1;
            if ch == b'}' || out.len() > 24 {
                break;
            }
        }
        return out;
    }
    match b.get(j) {
        Some(&ch) if ch == b'@' || ch == b'*' => return (ch as char).to_string(),
        Some(&ch) if ch.is_ascii_digit() => return (ch as char).to_string(),
        _ => {}
    }
    while let Some(&ch) = b.get(j) {
        if !(ch.is_ascii_alphanumeric() || ch == b'_') {
            break;
        }
        out.push(ch as char);
        j += 1;
    }
    out
}

/// Whether the `$` at `b[at]` sits inside an assignment word (`x=$y`,
/// `x+=$y`, `x=a/$y`): scan back to the start of the word and look for
/// `name=` at its head. Assignment words do not undergo word splitting.
fn in_assignment_word(b: &[u8], at: usize) -> bool {
    let mut start = at;
    while start > 0 && !b[start - 1].is_ascii_whitespace() {
        start -= 1;
    }
    let word = &b[start..at];
    let Some(eq) = word.iter().position(|&ch| ch == b'=') else {
        return false;
    };
    let name = if eq > 0 && word[eq - 1] == b'+' {
        &word[..eq - 1]
    } else {
        &word[..eq]
    };
    !name.is_empty()
        && name[0].is_ascii_alphabetic()
        && name
            .iter()
            .all(|&ch| ch.is_ascii_alphanumeric() || ch == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn errors(src: &str) -> Vec<(usize, String)> {
        check_shell_file("scripts/t.sh", src)
            .into_iter()
            .filter(|d| !d.allowed && d.severity == Severity::Error)
            .map(|d| (d.line, format!("{}: {}", d.rule, d.message)))
            .collect()
    }

    const STRICT: &str = "set -euo pipefail\n";

    #[test]
    fn missing_strict_mode_is_s01() {
        let errs = errors("#!/bin/bash\necho hi\n");
        assert!(errs.iter().any(|(_, m)| m.starts_with("S01")), "{errs:?}");
        assert!(errors(&format!("#!/bin/bash\n{STRICT}")).is_empty());
    }

    #[test]
    fn commented_strict_mode_does_not_count() {
        let errs = errors("# set -euo pipefail\necho hi\n");
        assert!(errs.iter().any(|(_, m)| m.starts_with("S01")));
    }

    #[test]
    fn unquoted_var_is_s02_and_quoted_is_not() {
        let errs = errors(&format!("{STRICT}rm -rf $dir\n"));
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].1.contains("$dir"));
        assert!(errors(&format!("{STRICT}rm -rf \"$dir\"\n")).is_empty());
    }

    #[test]
    fn special_and_positional_params_are_flagged() {
        let errs = errors(&format!("{STRICT}run $@ $1\n"));
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errors(&format!("{STRICT}run \"$@\" \"$1\"\n")).is_empty());
    }

    #[test]
    fn safe_contexts_are_silent() {
        let src = format!(
            "{STRICT}x=$y\nz+=$y/suffix\nif [[ -f $f ]]; then :; fi\nn=$(( $a + 1 ))\ncase $mode in a) : ;; esac\n"
        );
        assert!(errors(&src).is_empty(), "{:?}", errors(&src));
    }

    #[test]
    fn single_quotes_and_heredocs_are_opaque() {
        let src = format!(
            "{STRICT}trap 'rm -rf \"$d\" $x' EXIT\npython3 - <<'PY'\nprint($unquoted)\nPY\necho done\n"
        );
        assert!(errors(&src).is_empty(), "{:?}", errors(&src));
    }

    #[test]
    fn herestrings_are_not_heredocs() {
        let src = format!("{STRICT}read -r a <<<\"$pair\"\necho $oops\n");
        let errs = errors(&src);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].1.contains("$oops"));
    }

    #[test]
    fn nested_substitution_inside_quotes_rescans() {
        // The inner "$ck" is quoted; $raw inside the substitution is not.
        let src = format!("{STRICT}echo \"size $(wc -c < \"$ck\") and $(echo $raw)\"\n");
        let errs = errors(&src);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].1.contains("$raw"));
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = format!("{STRICT}ls $glob # lint: allow(S02) — globbing is the point\n");
        assert!(errors(&src).is_empty());
        // And the standalone form covers the next line.
        let src = format!("{STRICT}# lint: allow(S02) — globbing is the point\nls $glob\n");
        assert!(errors(&src).is_empty());
    }

    #[test]
    fn unused_allow_is_a_warning() {
        let src = format!("{STRICT}# lint: allow(S02) — stale\necho fine\n");
        let diags = check_shell_file("scripts/t.sh", &src);
        assert!(diags
            .iter()
            .any(|d| d.rule == "L02" && d.severity == Severity::Warning));
    }
}
