//! Deterministic workspace walker.
//!
//! Collects the files the rules apply to, in sorted order (a linter about
//! determinism had better report in a deterministic order itself):
//!
//! - Rust sources under `src/` and every `crates/*/src/` tree. Integration
//!   tests, benches, and examples are deliberately out of scope — they are
//!   not protocol paths, and they exercise rejection/fault cases that the
//!   rules would drown in noise. `vendor/` (third-party stand-ins) and
//!   `target/` are never scanned.
//! - Shell scripts under `scripts/`.

use std::fs;
use std::path::{Path, PathBuf};

/// The files one lint run covers, workspace-relative with `/` separators.
#[derive(Debug, Default)]
pub struct Workspace {
    pub rust_files: Vec<String>,
    pub shell_files: Vec<String>,
}

/// Finds the workspace root by walking up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects the lintable files under `root`.
pub fn collect(root: &Path) -> std::io::Result<Workspace> {
    let mut ws = Workspace::default();

    let top_src = root.join("src");
    if top_src.is_dir() {
        collect_rust_tree(root, &top_src, &mut ws.rust_files)?;
    }

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_entries(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rust_tree(root, &src, &mut ws.rust_files)?;
            }
        }
    }

    let scripts = root.join("scripts");
    if scripts.is_dir() {
        for entry in sorted_entries(&scripts)? {
            if entry.extension().is_some_and(|e| e == "sh") {
                ws.shell_files.push(relative(root, &entry));
            }
        }
    }

    ws.rust_files.sort();
    ws.shell_files.sort();
    Ok(ws)
}

fn collect_rust_tree(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_rust_tree(root, &entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(relative(root, &entry));
        }
    }
    Ok(())
}

fn sorted_entries(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_scans_expected_trees() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("this test runs inside the workspace");
        let ws = collect(&root).unwrap();
        assert!(ws
            .rust_files
            .iter()
            .any(|f| f == "crates/distsim/src/wire.rs"));
        assert!(ws.rust_files.iter().any(|f| f == "src/lib.rs"));
        assert!(ws.shell_files.iter().any(|f| f == "scripts/check_bench.sh"));
        assert!(
            !ws.rust_files.iter().any(|f| f.starts_with("vendor/")),
            "vendored stand-ins must not be scanned"
        );
        assert!(
            !ws.rust_files.iter().any(|f| f.contains("/fixtures/")),
            "lint fixtures must not be scanned as workspace sources"
        );
        let mut sorted = ws.rust_files.clone();
        sorted.sort();
        assert_eq!(ws.rust_files, sorted, "scan order must be deterministic");
    }
}
