//! The machine-readable lint report, following the `bench` report
//! conventions (`crates/bench/src/report.rs`): a `schema_version` header,
//! a flat records array, pretty-printed JSON with a trailing newline so the
//! artifact diffs cleanly.
//!
//! Allowed (annotated) findings are **included** with their justification —
//! the uploaded `lint-report.json` is a complete audit trail of every
//! escape-hatch use in the tree, not just the failures.

use crate::rules::{Diagnostic, Severity};
use serde::{Serialize, SerializeSeq, SerializeStruct, Serializer};

/// Version stamp written into every report; bump when the shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A full lint run.
#[derive(Debug)]
pub struct LintReport {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Unallowed error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Unallowed warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Findings suppressed by a justified `lint: allow(...)`.
    pub fn allowed(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.allowed).count()
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| !d.allowed && d.severity == sev)
            .count()
    }

    /// Whether the run fails: errors always do, warnings under `--deny-all`.
    pub fn failed(&self, deny_all: bool) -> bool {
        self.diagnostics.iter().any(|d| d.is_failure(deny_all))
    }

    /// Pretty JSON with trailing newline (the bench-report convention).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("lint report serialization is total");
        s.push('\n');
        s
    }

    /// Human `file:line` diagnostic lines, failures first.
    pub fn human_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for d in &self.diagnostics {
            if d.allowed {
                continue;
            }
            lines.push(format!(
                "{}[{}] {}:{}: {}",
                d.severity.as_str(),
                d.rule,
                d.file,
                d.line,
                d.message
            ));
        }
        for d in &self.diagnostics {
            if d.allowed {
                lines.push(format!(
                    "allowed[{}] {}:{} — {}",
                    d.rule,
                    d.file,
                    d.line,
                    d.justification.as_deref().unwrap_or("")
                ));
            }
        }
        lines
    }
}

impl Serialize for LintReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("LintReport", 7)?;
        s.serialize_field("schema_version", &SCHEMA_VERSION)?;
        s.serialize_field("tool", "dkc-lint")?;
        s.serialize_field("files_scanned", &self.files_scanned)?;
        s.serialize_field("errors", &self.errors())?;
        s.serialize_field("warnings", &self.warnings())?;
        s.serialize_field("allowed", &self.allowed())?;
        s.serialize_field("diagnostics", &DiagList(&self.diagnostics))?;
        s.end()
    }
}

struct DiagList<'a>(&'a [Diagnostic]);

impl Serialize for DiagList<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
        for d in self.0 {
            seq.serialize_element(&DiagRecord(d))?;
        }
        seq.end()
    }
}

struct DiagRecord<'a>(&'a Diagnostic);

impl Serialize for DiagRecord<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let d = self.0;
        let mut s = serializer.serialize_struct("Diagnostic", 7)?;
        s.serialize_field("rule", d.rule)?;
        s.serialize_field("severity", d.severity.as_str())?;
        s.serialize_field("file", &d.file)?;
        s.serialize_field("line", &d.line)?;
        s.serialize_field("message", &d.message)?;
        s.serialize_field("allowed", &d.allowed)?;
        s.serialize_field("justification", &d.justification)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic {
                    rule: "D02",
                    severity: Severity::Error,
                    file: "crates/core/src/x.rs".into(),
                    line: 7,
                    message: "wall clock".into(),
                    allowed: false,
                    justification: None,
                },
                Diagnostic {
                    rule: "D04",
                    severity: Severity::Error,
                    file: "crates/distsim/src/wire.rs".into(),
                    line: 40,
                    message: "expect".into(),
                    allowed: true,
                    justification: Some("length pre-checked".into()),
                },
                Diagnostic {
                    rule: "L02",
                    severity: Severity::Warning,
                    file: "scripts/x.sh".into(),
                    line: 2,
                    message: "unused allow".into(),
                    allowed: false,
                    justification: None,
                },
            ],
        }
    }

    #[test]
    fn counts_and_failure_semantics() {
        let r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.allowed(), 1);
        assert!(r.failed(false), "errors fail even without --deny-all");
        let warnings_only = LintReport {
            files_scanned: 1,
            diagnostics: r
                .diagnostics
                .into_iter()
                .filter(|d| d.severity == Severity::Warning)
                .collect(),
        };
        assert!(!warnings_only.failed(false));
        assert!(warnings_only.failed(true), "--deny-all promotes warnings");
    }

    #[test]
    fn json_follows_bench_conventions() {
        let json = sample().to_json();
        assert!(json.ends_with('\n'));
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"tool\": \"dkc-lint\""));
        assert!(json.contains("\"justification\": \"length pre-checked\""));
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("errors").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            value
                .get("diagnostics")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }
}
