//! The determinism & wire-safety rule set for Rust sources.
//!
//! Every execution mode of the simulator (lockstep dense/sparse, parallel,
//! mailbox) and every checkpoint/resume must be **byte-identical**; these
//! rules statically reject the nondeterminism sources that would break that
//! invariant, plus the panic paths that would turn hostile bytes into crashes
//! instead of typed errors:
//!
//! | rule | scope | says |
//! |------|-------|------|
//! | D01  | the protocol paths ([`PROTOCOL_CRATES`]: `crates/distsim`, `crates/core`, the shard partitioner) | no `HashMap`/`HashSet`: hash iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or an indexed arena (keyed-lookup-only uses carry an allow annotation) |
//! | D02  | whole workspace | `Instant::now` / `SystemTime` only inside the metrics allowlist ([`D02_ALLOWLIST`]); wall clock must never feed a deterministic counter |
//! | D03  | the protocol paths ([`PROTOCOL_CRATES`]) | no direct `rand::` / `thread_rng` / `from_entropy` / `OsRng`: protocol randomness routes through the seeded splitmix64 helpers (`dkc_distsim::faults`) |
//! | D04  | the defensive decode files ([`D04_DECODE_PATHS`]) | no `panic!` family, `.unwrap()`, or `.expect()`: decode paths return typed errors, never panic |
//! | D05  | whole workspace | every `unsafe` needs a `// SAFETY:` comment on the same or one of the two preceding lines |
//! | D06  | every crate root (`lib.rs`, `main.rs`, `src/bin/*.rs`) | must carry `#![deny(deprecated)]` so retired APIs cannot creep back into internal call sites |
//!
//! `#[cfg(test)]` / `#[test]` items are exempt from D01–D04 (tests exercise
//! rejection paths and use the vendored seeded `StdRng` freely); D05 and D06
//! apply everywhere.
//!
//! ## The escape hatch
//!
//! `// lint: allow(Dxx) — reason` suppresses a diagnostic on its own line or
//! the line directly below, but only with a non-empty justification; a bare
//! `lint: allow(...)` without one is itself an error (**L01**), and an allow
//! that suppresses nothing is a warning (**L02**) so stale annotations are
//! garbage-collected.

use crate::lexer::{lex_rust, Comment, Lexed, Tok, TokKind};

/// Files allowed to read the wall clock (metrics-only timing). Matched as
/// path suffixes against `/`-separated workspace-relative paths.
pub const D02_ALLOWLIST: &[&str] = &[
    "crates/distsim/src/network.rs",
    "crates/distsim/src/mailbox.rs",
    "crates/bench/src/experiments.rs",
];

/// The defensive decode paths D04 protects: wire readers, checkpoint decode,
/// and dataset parsers. Hostile bytes through these files must surface as
/// typed errors, never as panics.
pub const D04_DECODE_PATHS: &[&str] = &[
    "crates/distsim/src/wire.rs",
    "crates/distsim/src/shard.rs",
    "crates/distsim/src/checkpoint.rs",
    "crates/core/src/checkpoint.rs",
    "crates/graph/src/ingest.rs",
];

/// Crates whose sources are protocol paths for D01/D03. Matched by
/// `contains`, so an entry may scope a whole crate (trailing slash) or a
/// single file: the shard partitioner lives in `dkc-graph` but its hash
/// assignment is protocol state, so it is held to the same determinism rules.
pub const PROTOCOL_CRATES: &[&str] = &[
    "crates/distsim/",
    "crates/core/",
    "crates/graph/src/partition.rs",
];

/// Diagnostic severity. Errors always fail the run; warnings fail only under
/// `--deny-all` (the CI configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, annotated or not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D01`…`D06`, `S01`/`S02`, `L01`/`L02`).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// Whether a well-formed `lint: allow(...)` suppressed this finding.
    pub allowed: bool,
    /// The justification string of the suppressing annotation.
    pub justification: Option<String>,
}

impl Diagnostic {
    /// Whether this diagnostic fails the run under the given strictness.
    pub fn is_failure(&self, deny_all: bool) -> bool {
        !self.allowed && (self.severity == Severity::Error || deny_all)
    }
}

/// A parsed `lint: allow(RULE) — reason` annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowComment {
    pub rule: String,
    pub reason: String,
    pub line: usize,
    /// Standalone comment lines cover the next line too.
    pub covers_next_line: bool,
}

/// The outcome of looking at one comment: not an annotation at all, a good
/// one, or a malformed one (kept for the L01 diagnostic).
pub enum AllowParse {
    NotAnAllow,
    Ok(AllowComment),
    Malformed { line: usize, problem: String },
}

/// Parses the allow-comment grammar:
/// `lint: allow(<RULE>) <— | -- | :> <non-empty justification>`.
/// Leading doc-comment sigils (`/`, `!`) and whitespace are ignored.
pub fn parse_allow_comment(c: &Comment) -> AllowParse {
    let text = c.text.trim_start_matches(['/', '!']).trim();
    let Some(rest) = text.strip_prefix("lint:") else {
        return AllowParse::NotAnAllow;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return AllowParse::Malformed {
            line: c.line,
            problem: "expected `allow(<RULE>)` after `lint:`".into(),
        };
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Malformed {
            line: c.line,
            problem: "expected `(` after `lint: allow`".into(),
        };
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Malformed {
            line: c.line,
            problem: "unclosed rule id: expected `)`".into(),
        };
    };
    let rule = rest[..close].trim();
    let well_formed_id = rule.len() >= 2
        && rule.starts_with(|ch: char| ch.is_ascii_uppercase())
        && rule[1..].chars().all(|ch| ch.is_ascii_digit());
    if !well_formed_id {
        return AllowParse::Malformed {
            line: c.line,
            problem: format!("bad rule id {rule:?} (expected e.g. `D01`)"),
        };
    }
    let after = rest[close + 1..].trim_start();
    let reason = ["—", "--", "-", ":"]
        .iter()
        .find_map(|sep| after.strip_prefix(sep))
        .map(str::trim);
    match reason {
        Some(r) if !r.is_empty() => AllowParse::Ok(AllowComment {
            rule: rule.to_string(),
            reason: r.to_string(),
            line: c.line,
            covers_next_line: !c.trailing,
        }),
        _ => AllowParse::Malformed {
            line: c.line,
            problem: format!(
                "allow({rule}) carries no justification — write \
                 `lint: allow({rule}) — <why this use is sound>`"
            ),
        },
    }
}

/// Computes, per token index, whether the token sits inside a test-gated item
/// (`#[cfg(test)]` / `#[test]` attribute followed by the item's block or
/// terminating semicolon).
fn test_gated_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute body for a `test` identifier.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(s) if s == "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr && j < toks.len() {
                // Skip any further attributes stacked on the same item.
                let mut k = j + 1;
                while k < toks.len()
                    && toks[k].is_punct('#')
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 0usize;
                    while k < toks.len() {
                        match &toks[k].kind {
                            TokKind::Punct('[') => d += 1,
                            TokKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // The item extends to its matching close brace, or to a `;`
                // reached before any brace opens (e.g. `#[cfg(test)] use …;`).
                let mut brace = 0usize;
                let end = loop {
                    if k >= toks.len() {
                        break toks.len() - 1;
                    }
                    match &toks[k].kind {
                        TokKind::Punct('{') => brace += 1,
                        TokKind::Punct('}') => {
                            brace = brace.saturating_sub(1);
                            if brace == 0 {
                                break k;
                            }
                        }
                        TokKind::Punct(';') if brace == 0 => break k,
                        _ => {}
                    }
                    k += 1;
                };
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// A raw (pre-allow-matching) finding.
pub(crate) struct Raw {
    pub(crate) rule: &'static str,
    pub(crate) line: usize,
    pub(crate) message: String,
}

fn path_has_suffix(path: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|s| path.ends_with(s))
}

fn in_protocol_crate(path: &str) -> bool {
    PROTOCOL_CRATES.iter().any(|c| path.contains(c))
}

/// Whether `path` names a crate root that D06 requires to carry
/// `#![deny(deprecated)]`: `src/lib.rs`, `src/main.rs`, or a `src/bin/*.rs`
/// binary target.
pub fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
        || path == "src/lib.rs"
        || path == "src/main.rs"
}

/// Runs every rule over one Rust source file. `path` is the
/// workspace-relative `/`-separated path (rule scoping keys off it).
pub fn check_rust_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lex_rust(src);
    let mask = test_gated_mask(&lexed.toks);
    let mut raw: Vec<Raw> = Vec::new();

    scan_tokens(path, &lexed, &mask, &mut raw);
    if is_crate_root(path) {
        check_d06(&lexed, &mut raw);
    }
    check_d05(&lexed, &mut raw);

    apply_allows(path, &lexed.comments, raw)
}

fn scan_tokens(path: &str, lexed: &Lexed, mask: &[bool], raw: &mut Vec<Raw>) {
    let protocol = in_protocol_crate(path);
    let clock_allowed = path_has_suffix(path, D02_ALLOWLIST);
    let decode_path = path_has_suffix(path, D04_DECODE_PATHS);
    let toks = &lexed.toks;

    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        let followed_by_path_sep = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'));
        match id.as_str() {
            "HashMap" | "HashSet" if protocol => raw.push(Raw {
                rule: "D01",
                line: t.line,
                message: format!(
                    "`{id}` in a protocol crate: hash iteration order is nondeterministic \
                     and would break byte-identity across runs — use `BTreeMap`/`BTreeSet` \
                     or an indexed arena for ordered traversal (a keyed-lookup-only use \
                     needs `// lint: allow(D01) — <why>`)"
                ),
            }),
            "Instant"
                if !clock_allowed
                    && followed_by_path_sep
                    && toks.get(i + 3).is_some_and(|a| a.is_ident("now")) =>
            {
                raw.push(Raw {
                    rule: "D02",
                    line: t.line,
                    message: "`Instant::now` outside the metrics allowlist: wall-clock time \
                              must stay confined to timing-only fields (see D02_ALLOWLIST \
                              in dkc-lint)"
                        .into(),
                });
            }
            "SystemTime" if !clock_allowed => raw.push(Raw {
                rule: "D02",
                line: t.line,
                message: "`SystemTime` outside the metrics allowlist: wall-clock time is \
                          nondeterministic and must never feed protocol state"
                    .into(),
            }),
            "rand" if protocol && followed_by_path_sep => raw.push(Raw {
                rule: "D03",
                line: t.line,
                message: "direct `rand::` path in a protocol crate: route randomness through \
                          the seeded splitmix64 helpers (`dkc_distsim::faults`) so every \
                          execution mode replays identically"
                    .into(),
            }),
            "thread_rng" | "from_entropy" | "OsRng" if protocol => raw.push(Raw {
                rule: "D03",
                line: t.line,
                message: format!(
                    "`{id}` seeds from ambient entropy: protocol randomness must be \
                     seeded (splitmix64 helpers) so runs are reproducible"
                ),
            }),
            "panic" | "unreachable" | "todo" | "unimplemented"
                if decode_path && toks.get(i + 1).is_some_and(|a| a.is_punct('!')) =>
            {
                raw.push(Raw {
                    rule: "D04",
                    line: t.line,
                    message: format!(
                        "`{id}!` in a defensive decode path: hostile input must surface \
                         as a typed error, never a panic"
                    ),
                });
            }
            "unwrap" | "expect"
                if decode_path
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|a| a.is_punct('(')) =>
            {
                raw.push(Raw {
                    rule: "D04",
                    line: t.line,
                    message: format!(
                        "`.{id}()` in a defensive decode path: return the typed error \
                         instead (or justify a provably-unreachable case with \
                         `// lint: allow(D04) — <proof>`)"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// D05: every `unsafe` token needs a `SAFETY:` comment on its own line or one
/// of the two lines above. Applies to test code too — safety arguments do not
/// get a holiday in `#[cfg(test)]`.
fn check_d05(lexed: &Lexed, raw: &mut Vec<Raw>) {
    for t in &lexed.toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        let justified = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.line <= t.line && t.line.saturating_sub(c.line) <= 2
        });
        if !justified {
            raw.push(Raw {
                rule: "D05",
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on the same or the two \
                          preceding lines"
                    .into(),
            });
        }
    }
}

/// D06: the crate root must carry the inner attribute `#![deny(deprecated)]`
/// (possibly alongside other lints in the same `deny(...)` list).
fn check_d06(lexed: &Lexed, raw: &mut Vec<Raw>) {
    let toks = &lexed.toks;
    let mut found = false;
    let mut i = 0;
    while i + 4 < toks.len() {
        if toks[i].is_punct('#')
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('[')
            && toks[i + 3].is_ident("deny")
            && toks[i + 4].is_punct('(')
        {
            let mut j = i + 5;
            while j < toks.len() && !toks[j].is_punct(']') {
                if toks[j].is_ident("deprecated") {
                    found = true;
                }
                j += 1;
            }
        }
        i += 1;
    }
    if !found {
        raw.push(Raw {
            rule: "D06",
            line: 1,
            message: "crate root lacks `#![deny(deprecated)]`: deprecated wrappers \
                      (e.g. `Network::new` → `NetworkBuilder`) must not creep back \
                      into internal call sites"
                .into(),
        });
    }
}

/// Matches raw findings against allow annotations, emitting the final
/// diagnostics plus L01 (malformed allow) and L02 (unused allow). Shared by
/// the Rust and shell checkers (shell comments parse with the same grammar).
pub(crate) fn apply_allows(path: &str, comments: &[Comment], raw: Vec<Raw>) -> Vec<Diagnostic> {
    let mut allows: Vec<(AllowComment, bool)> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for c in comments {
        match parse_allow_comment(c) {
            AllowParse::NotAnAllow => {}
            AllowParse::Ok(a) => allows.push((a, false)),
            AllowParse::Malformed { line, problem } => diags.push(Diagnostic {
                rule: "L01",
                severity: Severity::Error,
                file: path.to_string(),
                line,
                message: format!("malformed lint annotation: {problem}"),
                allowed: false,
                justification: None,
            }),
        }
    }

    for r in raw {
        let hit = allows.iter_mut().find(|(a, _)| {
            a.rule == r.rule && (a.line == r.line || (a.covers_next_line && a.line + 1 == r.line))
        });
        let (allowed, justification) = match hit {
            Some((a, used)) => {
                *used = true;
                (true, Some(a.reason.clone()))
            }
            None => (false, None),
        };
        diags.push(Diagnostic {
            rule: r.rule,
            severity: Severity::Error,
            file: path.to_string(),
            line: r.line,
            message: r.message,
            allowed,
            justification,
        });
    }

    for (a, used) in &allows {
        if !used {
            diags.push(Diagnostic {
                rule: "L02",
                severity: Severity::Warning,
                file: path.to_string(),
                line: a.line,
                message: format!(
                    "unused `lint: allow({})` — the annotation suppresses nothing; \
                     delete it or move it onto the violating line",
                    a.rule
                ),
                allowed: false,
                justification: None,
            });
        }
    }

    diags.sort_by(|x, y| (x.line, x.rule).cmp(&(y.line, y.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_grammar_accepts_em_dash_double_dash_and_colon() {
        for sep in ["—", "--", ":"] {
            let c = Comment {
                line: 3,
                text: format!(" lint: allow(D01) {sep} keyed lookup only"),
                trailing: true,
            };
            match parse_allow_comment(&c) {
                AllowParse::Ok(a) => {
                    assert_eq!(a.rule, "D01");
                    assert_eq!(a.reason, "keyed lookup only");
                    assert!(!a.covers_next_line);
                }
                _ => panic!("separator {sep:?} rejected"),
            }
        }
    }

    #[test]
    fn allow_without_justification_is_malformed() {
        for text in [
            " lint: allow(D04)",
            " lint: allow(D04) —",
            " lint: allow(D04) --   ",
            " lint: allow()",
            " lint: allow(d04) — lowercase id",
            " lint: allow D04 — no parens",
        ] {
            let c = Comment {
                line: 1,
                text: text.into(),
                trailing: false,
            };
            assert!(
                matches!(parse_allow_comment(&c), AllowParse::Malformed { .. }),
                "{text:?} should be malformed"
            );
        }
    }

    #[test]
    fn unrelated_comments_are_not_allows() {
        let c = Comment {
            line: 1,
            text: " just a note about linting things".into(),
            trailing: false,
        };
        assert!(matches!(parse_allow_comment(&c), AllowParse::NotAnAllow));
    }
}
