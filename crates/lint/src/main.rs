//! The `dkc-lint` binary: walks the workspace, runs the determinism &
//! wire-safety rules, prints human `file:line` diagnostics, and optionally
//! writes the machine-readable JSON report CI uploads as an artifact.
//!
//! Exit codes: `0` clean, `1` violations, `2` usage or I/O error.

#![deny(deprecated)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dkc-lint [--root <dir>] [--json <path>] [--deny-all] [--quiet]
  --root <dir>   workspace root to lint (default: nearest [workspace] Cargo.toml)
  --json <path>  write the machine-readable lint report (schema v1)
  --deny-all     fail on warnings too (unused allows) — the CI configuration
  --quiet        suppress the per-allowance audit lines";

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    deny_all: bool,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        deny_all: false,
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(v));
            }
            "--deny-all" => args.deny_all = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("dkc-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match dkc_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "dkc-lint: no [workspace] Cargo.toml above {} — pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match dkc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dkc-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for line in report.human_lines() {
        if args.quiet && line.starts_with("allowed[") {
            continue;
        }
        println!("{line}");
    }
    println!(
        "dkc-lint: {} files scanned — {} error(s), {} warning(s), {} allowed",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.allowed()
    );

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("dkc-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.failed(args.deny_all) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
