//! A lightweight Rust tokenizer — deliberately **not** a full parser.
//!
//! The determinism rules only need to see identifiers, punctuation, and
//! comments with accurate line numbers; everything that could hide a false
//! positive (string literals, char literals, numeric literals) is consumed
//! and discarded here so the rule scanners never match inside them. The
//! tokenizer understands:
//!
//! - line (`//`) and nested block (`/* */`) comments — captured with their
//!   line numbers for the `// lint: allow(...)` and `// SAFETY:` grammars;
//! - string, raw-string (`r#"…"#`), byte-string, and char literals;
//! - the `'a` lifetime vs `'a'` char-literal ambiguity;
//! - numeric literals including `1_000`, `0x1f`, `1.5e-3f64`, and the
//!   `0..n` range adjacency.
//!
//! This is enough to make rule detection token-accurate without a `rustc` or
//! `syn` dependency (the workspace is fully offline; see `vendor/README.md`).

/// One significant token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `:`, `{`, …).
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: usize,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            TokKind::Punct(_) => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A comment with its 1-based starting line. `text` excludes the `//` / `/*`
/// markers but keeps interior doc-comment sigils (`/`, `!`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
    /// Whether any non-comment, non-whitespace source precedes the comment on
    /// its starting line (distinguishes trailing annotations from standalone
    /// comment lines).
    pub trailing: bool,
}

/// The output of [`lex_rust`]: significant tokens plus captured comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    /// Whether a significant token has been emitted on the current line.
    code_on_line: bool,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.code_on_line = false;
        }
        b.into()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes Rust source. Never fails: unterminated literals simply consume
/// to end of input (the real compiler rejects such files anyway, and a lint
/// must not panic on malformed input).
pub fn lex_rust(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        code_on_line: false,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.peek(1) == Some(b'*') => lex_block_comment(&mut cur, &mut out),
            b'"' => lex_string(&mut cur),
            b'b' | b'r' if starts_string_prefix(&cur) => {
                // Consume the prefix letters, then the (raw) string body.
                while matches!(cur.peek(0), Some(b'b') | Some(b'r')) {
                    cur.bump();
                }
                if cur.peek(0) == Some(b'"') {
                    lex_string(&mut cur);
                } else {
                    lex_raw_string(&mut cur);
                }
            }
            b'\'' => lex_char_or_lifetime(&mut cur),
            _ if b.is_ascii_digit() => lex_number(&mut cur),
            _ if is_ident_start(b) => {
                let start = cur.pos;
                let line = cur.line;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                cur.code_on_line = true;
                out.toks.push(Tok {
                    kind: TokKind::Ident(text),
                    line,
                });
            }
            _ => {
                let line = cur.line;
                cur.bump();
                cur.code_on_line = true;
                out.toks.push(Tok {
                    kind: TokKind::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

/// Whether the cursor sits on a `b"…"`, `r"…"`, `br#"…"#`-style prefix (as
/// opposed to an identifier that merely starts with `b` or `r`).
fn starts_string_prefix(cur: &Cursor<'_>) -> bool {
    let mut i = 0;
    let mut has_r = false;
    while i < 2 {
        match cur.peek(i) {
            Some(b'b') => i += 1,
            Some(b'r') => {
                has_r = true;
                i += 1;
            }
            _ => break,
        }
    }
    match cur.peek(i) {
        Some(b'"') => i > 0,
        Some(b'#') => has_r,
        _ => false,
    }
}

fn lex_line_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let line = cur.line;
    let trailing = cur.code_on_line;
    cur.bump();
    cur.bump(); // the two slashes
    let start = cur.pos;
    while cur.peek(0).is_some_and(|b| b != b'\n') {
        cur.bump();
    }
    out.comments.push(Comment {
        line,
        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        trailing,
    });
}

fn lex_block_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let line = cur.line;
    let trailing = cur.code_on_line;
    cur.bump();
    cur.bump(); // `/*`
    let start = cur.pos;
    let mut depth = 1usize;
    let mut end = cur.pos;
    while let Some(b) = cur.peek(0) {
        if b == b'/' && cur.peek(1) == Some(b'*') {
            depth += 1;
            cur.bump();
            cur.bump();
        } else if b == b'*' && cur.peek(1) == Some(b'/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            cur.bump();
        }
        end = cur.pos;
    }
    out.comments.push(Comment {
        line,
        text: String::from_utf8_lossy(&cur.src[start..end.min(cur.src.len())]).into_owned(),
        trailing,
    });
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Raw (possibly byte) string: the `r`/`b` prefix letters are already
/// consumed; the cursor sits on the first `#` or the quote.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some(b'"') {
        return; // not actually a raw string (e.g. `r#ident`); nothing to skip
    }
    cur.bump();
    'outer: while let Some(b) = cur.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek(i) != Some(b'#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) and `'_`.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) {
    cur.bump(); // the opening `'`
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume through the closing quote.
            cur.bump();
            cur.bump();
            while cur.peek(0).is_some_and(|b| b != b'\'') {
                cur.bump();
            }
            cur.bump();
        }
        Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
            let mut i = 1;
            while cur.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if cur.peek(i) == Some(b'\'') {
                // `'a'`-style char literal.
                for _ in 0..=i {
                    cur.bump();
                }
            } else {
                // Lifetime: consume the identifier, no closing quote.
                for _ in 0..i {
                    cur.bump();
                }
            }
        }
        Some(_) => {
            // `'('`-style char literal around punctuation.
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
        }
        None => {}
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    // A fractional part only when followed by a digit — leaves `0..n` intact.
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        // Negative exponents (`1.5e-3`).
        if matches!(cur.peek(0), Some(b'+') | Some(b'-'))
            && cur
                .src
                .get(cur.pos.wrapping_sub(1))
                .is_some_and(|&b| b == b'e' || b == b'E')
        {
            cur.bump();
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex_rust(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                TokKind::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let src = r#"let x = "HashMap::iter() Instant::now"; let c = 'u'; let l: &'static str = "rand::";"#;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"rand".to_string()));
        assert!(!ids.contains(&"u".to_string()), "char literal leaked");
        assert!(!ids.contains(&"static".to_string()), "lifetime leaked");
    }

    #[test]
    fn raw_and_byte_strings_are_opaque() {
        let src = r###"let a = r#"thread_rng "quoted" inside"#; let b = b"SystemTime"; let c = br#"panic!"#;"###;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines_and_trailing_flags() {
        let src = "// standalone\nlet x = 1; // lint: allow(D01) — keyed lookup\n/* block */\n";
        let lexed = lex_rust(src);
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].trailing);
        assert!(lexed.comments[1].text.contains("allow(D01)"));
        assert_eq!(lexed.comments[2].text.trim(), "block");
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let lexed = lex_rust(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.toks[0].ident(), Some("fn"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { let y = 1.5e-3f64; }";
        let lexed = lex_rust(src);
        assert!(lexed.toks.iter().any(|t| t.is_punct('.')));
        assert!(lexed.toks.iter().any(|t| t.is_ident("n")));
        assert!(!lexed.toks.iter().any(|t| t.is_ident("f64")));
    }

    #[test]
    fn lifetimes_and_labels_do_not_derail() {
        let src = "fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }";
        let ids = idents(src);
        assert!(ids.contains(&"loop".to_string()));
        assert!(ids.contains(&"break".to_string()));
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let lexed = lex_rust(src);
        let b_line = lexed
            .toks
            .iter()
            .find(|t| t.is_ident("b"))
            .map(|t| t.line)
            .unwrap();
        assert_eq!(b_line, 3);
    }
}
