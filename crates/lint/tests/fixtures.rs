//! Fixture-based end-to-end tests: one doctored snippet per rule under
//! `fixtures/violations/`, a clean tree under `fixtures/clean/`, and the CLI
//! exercised through `CARGO_BIN_EXE_dkc-lint` exactly as CI runs it.

use dkc_lint::{lint_workspace, Severity};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn violations_fixture_trips_every_rule_exactly_once() {
    let report = lint_workspace(&fixture("violations")).unwrap();
    let mut got: Vec<(&str, &str, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    got.sort_unstable();
    let mut expected = vec![
        ("D01", "crates/distsim/src/d01.rs", 4),
        // The partitioner file is protocol-scoped by exact path even though
        // the rest of crates/graph is not.
        ("D01", "crates/graph/src/partition.rs", 6),
        ("D02", "crates/core/src/d02.rs", 4),
        ("D03", "crates/distsim/src/d03.rs", 4),
        ("D04", "crates/distsim/src/shard.rs", 5),
        ("D04", "crates/distsim/src/wire.rs", 4),
        ("D05", "crates/distsim/src/d05.rs", 4),
        ("D06", "crates/d06/src/lib.rs", 1),
        ("L01", "crates/distsim/src/l01.rs", 3),
        ("L02", "crates/distsim/src/l01.rs", 6),
        ("S01", "scripts/bad.sh", 1),
        ("S02", "scripts/bad.sh", 4),
    ];
    expected.sort_unstable();
    assert_eq!(got, expected);

    assert!(
        report.failed(false),
        "errors must fail even without deny-all"
    );
    assert_eq!(report.errors(), 11, "all but L02 are errors");
    assert_eq!(report.warnings(), 1, "the stale allow is the one warning");
    assert_eq!(report.allowed(), 0);

    let l02 = report.diagnostics.iter().find(|d| d.rule == "L02").unwrap();
    assert_eq!(l02.severity, Severity::Warning);
}

#[test]
fn test_gated_code_is_exempt_in_fixture() {
    // d01.rs also contains a #[cfg(test)] HashMap use; only the non-test one
    // may fire (the exact-count assertion above depends on this, but make the
    // intent explicit).
    let report = lint_workspace(&fixture("violations")).unwrap();
    let d01: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D01" && d.file.ends_with("d01.rs"))
        .collect();
    assert_eq!(d01.len(), 1);
    assert_eq!(d01[0].line, 4);
}

#[test]
fn clean_fixture_passes_deny_all_and_audits_the_allow() {
    let report = lint_workspace(&fixture("clean")).unwrap();
    assert!(
        !report.failed(true),
        "clean tree must pass --deny-all: {:?}",
        report.diagnostics
    );
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
    assert_eq!(report.allowed(), 1, "the consumed D01 allow is audited");
    let allowed = report.diagnostics.iter().find(|d| d.allowed).unwrap();
    assert_eq!(allowed.rule, "D01");
    assert_eq!(
        allowed.justification.as_deref(),
        Some("keyed lookup only; nothing iterates this map")
    );
}

#[test]
fn cli_fails_on_violations_and_writes_the_json_report() {
    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-report-violations.json");
    let out = Command::new(env!("CARGO_BIN_EXE_dkc-lint"))
        .arg("--root")
        .arg(fixture("violations"))
        .arg("--json")
        .arg(&json_path)
        .arg("--deny-all")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");

    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("error[D01] crates/distsim/src/d01.rs:4"),
        "human file:line lines expected, got:\n{stdout}"
    );

    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.ends_with('\n'));
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(
        value.get("schema_version").and_then(|v| v.as_u64()),
        Some(1)
    );
    assert_eq!(value.get("tool").and_then(|v| v.as_str()), Some("dkc-lint"));
    assert_eq!(value.get("errors").and_then(|v| v.as_u64()), Some(11));
    assert_eq!(value.get("warnings").and_then(|v| v.as_u64()), Some(1));
}

#[test]
fn cli_exits_zero_on_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_dkc-lint"))
        .arg("--root")
        .arg(fixture("clean"))
        .arg("--deny-all")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_rejects_unknown_flags_with_usage_exit_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_dkc-lint"))
        .arg("--no-such-flag")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
