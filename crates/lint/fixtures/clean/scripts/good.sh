#!/usr/bin/env bash
# Fixture: strict mode present, every expansion quoted.
set -euo pipefail
dir="${1:-/tmp}"
ls "$dir"
