//! Fixture: a justified allow is consumed and reported as `allowed`.

// lint: allow(D01) — keyed lookup only; nothing iterates this map
pub type Lookup = std::collections::HashMap<u32, u32>;

pub fn keyed(m: &Lookup, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
