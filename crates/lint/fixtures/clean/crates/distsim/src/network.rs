//! Fixture: the D02 metrics allowlist admits wall-clock reads in network.rs.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
