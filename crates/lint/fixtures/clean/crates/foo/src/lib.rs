//! Fixture: a clean crate root carrying the D06 attribute.

#![deny(deprecated)]

pub fn fine() {}
