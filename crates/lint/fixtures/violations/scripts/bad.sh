#!/usr/bin/env bash
# Fixture: S01 (no strict mode) and S02 (unquoted expansion).
out=/tmp/lint-fixture
rm -rf $out
