//! Fixture: D01 — a hash map in a protocol crate (nondeterministic iteration).

pub fn doctored() {
    let m = std::collections::HashMap::from([(1u32, 2u32)]);
    for (k, v) in &m {
        let _ = (k, v);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_collections_in_tests_are_exempt() {
        let _ = std::collections::HashMap::from([(1u32, 1u32)]);
    }
}
