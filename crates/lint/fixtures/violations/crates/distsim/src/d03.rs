//! Fixture: D03 — ambient randomness in a protocol crate.

pub fn doctored() -> u32 {
    rand::random()
}
