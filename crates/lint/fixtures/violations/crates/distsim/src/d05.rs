//! Fixture: D05 — an unjustified unsafe block.

pub fn doctored(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
