//! Fixture: D04 — a panicking conversion in a defensive decode file.

pub fn doctored(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().unwrap())
}
