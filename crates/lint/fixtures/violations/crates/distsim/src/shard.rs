//! Fixture: D04 in the boundary-delta codec — `shard.rs` decodes cross-shard
//! frames from the wire, so it is scoped into [`dkc_lint::D04_DECODE_PATHS`].

pub fn doctored(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("four bytes"))
}
