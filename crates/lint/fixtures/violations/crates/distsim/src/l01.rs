//! Fixture: L01 (malformed allow) and L02 (stale allow).

// lint: allow(D01)
pub fn doctored() {}

// lint: allow(D03) — stale: nothing on the next line violates D03
pub fn stale() {}
