//! Fixture: D02 — wall clock outside the metrics allowlist.

pub fn doctored() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
