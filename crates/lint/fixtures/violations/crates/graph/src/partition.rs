//! Fixture: D01 in the shard partitioner — `crates/graph` is not a protocol
//! crate, but this one file carries protocol state (the hash assignment) and
//! is scoped into [`dkc_lint::PROTOCOL_CRATES`] by exact path.

pub fn doctored() {
    let m = std::collections::HashMap::from([(1u32, 2u32)]);
    for (k, v) in &m {
        let _ = (k, v);
    }
}
