//! Fixture: D06 — a crate root missing the deny(deprecated) attribute.

pub fn doctored() {}
