//! The `dkc` command-line binary. All logic lives in the library (`dkc_cli`)
//! so it can be unit-tested; this file only wires up `std::env::args`.

#![deny(deprecated)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dkc_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
