//! Dependency-free argument parsing: a command word, positional arguments, and
//! `--flag value` pairs (flags without values are treated as boolean switches).

use std::collections::HashMap;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Parsed {
    /// The command word (first argument).
    pub command: String,
    /// Positional arguments after the command (excluding flags).
    pub positional: Vec<String>,
    /// `--flag value` pairs; boolean switches map to `"true"`.
    pub flags: HashMap<String, String>,
}

impl Parsed {
    /// Parses raw arguments (without the program name).
    pub fn parse(raw: &[String]) -> Result<Parsed, String> {
        let mut iter = raw.iter().peekable();
        let command = iter
            .next()
            .cloned()
            .ok_or_else(|| format!("missing command\n{}", crate::USAGE))?;
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty flag name".to_string());
                }
                // A flag takes a value unless the next token is another flag or
                // the end of the arguments.
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        flags.insert(name.to_string(), iter.next().unwrap().clone());
                    }
                    _ => {
                        flags.insert(name.to_string(), "true".to_string());
                    }
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Parsed {
            command,
            positional,
            flags,
        })
    }

    /// A required positional argument.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}\n{}", crate::USAGE))
    }

    /// A string flag with a default.
    pub fn flag_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A numeric flag with a default; errors on malformed values.
    pub fn flag_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    /// Whether a boolean switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let p = Parsed::parse(&s(&[
            "coreness",
            "graph.edges",
            "--epsilon",
            "0.1",
            "--exact",
            "--top",
            "5",
        ]))
        .unwrap();
        assert_eq!(p.command, "coreness");
        assert_eq!(p.positional, vec!["graph.edges"]);
        assert_eq!(p.flag_str("epsilon", "1.0"), "0.1");
        assert_eq!(p.flag_num::<f64>("epsilon", 1.0).unwrap(), 0.1);
        assert_eq!(p.flag_num::<usize>("top", 0).unwrap(), 5);
        assert!(p.switch("exact"));
        assert!(!p.switch("compare"));
    }

    #[test]
    fn defaults_and_errors() {
        let p = Parsed::parse(&s(&["stats", "f"])).unwrap();
        assert_eq!(p.flag_num::<f64>("epsilon", 0.25).unwrap(), 0.25);
        assert_eq!(p.positional(0, "file").unwrap(), "f");
        assert!(p.positional(1, "other").is_err());

        assert!(Parsed::parse(&[]).is_err());
        let bad = Parsed::parse(&s(&["x", "--epsilon", "abc"])).unwrap();
        assert!(bad.flag_num::<f64>("epsilon", 1.0).is_err());
    }

    #[test]
    fn trailing_switch_is_boolean() {
        let p = Parsed::parse(&s(&["coreness", "f", "--exact"])).unwrap();
        assert!(p.switch("exact"));
    }
}
