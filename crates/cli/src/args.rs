//! Dependency-free argument parsing: a command word, positional arguments, and
//! `--flag value` pairs (flags without values are treated as boolean switches).

use std::collections::HashMap;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Parsed {
    /// The command word (first argument).
    pub command: String,
    /// Positional arguments after the command (excluding flags).
    pub positional: Vec<String>,
    /// `--flag value` pairs; boolean switches map to `"true"`.
    pub flags: HashMap<String, String>,
}

impl Parsed {
    /// Parses raw arguments (without the program name).
    pub fn parse(raw: &[String]) -> Result<Parsed, String> {
        let mut iter = raw.iter().peekable();
        let command = iter
            .next()
            .cloned()
            .ok_or_else(|| format!("missing command\n{}", crate::USAGE))?;
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty flag name".to_string());
                }
                // A flag takes a value unless the next token is another flag or
                // the end of the arguments.
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        flags.insert(name.to_string(), iter.next().unwrap().clone());
                    }
                    _ => {
                        flags.insert(name.to_string(), "true".to_string());
                    }
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Parsed {
            command,
            positional,
            flags,
        })
    }

    /// A required positional argument.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}\n{}", crate::USAGE))
    }

    /// A string flag with a default.
    pub fn flag_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A numeric flag with a default; errors on malformed values.
    pub fn flag_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    /// A numeric flag that must be strictly positive; errors with a clear
    /// message on zero, negative, or non-finite values.
    pub fn flag_num_positive<T>(&self, name: &str, default: T) -> Result<T, String>
    where
        T: std::str::FromStr + PartialOrd + Default + Copy + std::fmt::Display,
    {
        let value = self.flag_num(name, default)?;
        // `partial_cmp` so NaN (not greater than zero) is rejected too.
        if value.partial_cmp(&T::default()) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("--{name} must be > 0 (got {value})"));
        }
        Ok(value)
    }

    /// Rejects any flag not in `allowed`, so a typo (`--epsilonn 0.1`) errors
    /// out instead of silently running with the default value.
    pub fn expect_flags(&self, allowed: &[&str]) -> Result<(), String> {
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        unknown.sort_unstable();
        let mut supported: Vec<&str> = allowed.to_vec();
        supported.sort_unstable();
        Err(format!(
            "unknown flag{} for `{}`: {}\nsupported flags: {}\n{}",
            if unknown.len() == 1 { "" } else { "s" },
            self.command,
            unknown
                .iter()
                .map(|k| format!("--{k}"))
                .collect::<Vec<_>>()
                .join(", "),
            supported
                .iter()
                .map(|k| format!("--{k}"))
                .collect::<Vec<_>>()
                .join(", "),
            crate::USAGE
        ))
    }

    /// Whether a boolean switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let p = Parsed::parse(&s(&[
            "coreness",
            "graph.edges",
            "--epsilon",
            "0.1",
            "--exact",
            "--top",
            "5",
        ]))
        .unwrap();
        assert_eq!(p.command, "coreness");
        assert_eq!(p.positional, vec!["graph.edges"]);
        assert_eq!(p.flag_str("epsilon", "1.0"), "0.1");
        assert_eq!(p.flag_num::<f64>("epsilon", 1.0).unwrap(), 0.1);
        assert_eq!(p.flag_num::<usize>("top", 0).unwrap(), 5);
        assert!(p.switch("exact"));
        assert!(!p.switch("compare"));
    }

    #[test]
    fn defaults_and_errors() {
        let p = Parsed::parse(&s(&["stats", "f"])).unwrap();
        assert_eq!(p.flag_num::<f64>("epsilon", 0.25).unwrap(), 0.25);
        assert_eq!(p.positional(0, "file").unwrap(), "f");
        assert!(p.positional(1, "other").is_err());

        assert!(Parsed::parse(&[]).is_err());
        let bad = Parsed::parse(&s(&["x", "--epsilon", "abc"])).unwrap();
        assert!(bad.flag_num::<f64>("epsilon", 1.0).is_err());
    }

    #[test]
    fn trailing_switch_is_boolean() {
        let p = Parsed::parse(&s(&["coreness", "f", "--exact"])).unwrap();
        assert!(p.switch("exact"));
    }

    #[test]
    fn expect_flags_rejects_typos() {
        let p = Parsed::parse(&s(&["coreness", "f", "--epsilonn", "0.1"])).unwrap();
        let err = p.expect_flags(&["epsilon", "top"]).unwrap_err();
        assert!(err.contains("--epsilonn"), "{err}");
        assert!(err.contains("supported flags"), "{err}");
        assert!(p.expect_flags(&["epsilonn"]).is_ok());
        let ok = Parsed::parse(&s(&["coreness", "f", "--epsilon", "0.1"])).unwrap();
        assert!(ok.expect_flags(&["epsilon", "top"]).is_ok());
    }

    #[test]
    fn positive_flags_validate_range() {
        let p = Parsed::parse(&s(&["coreness", "f", "--epsilon", "-0.5"])).unwrap();
        let err = p.flag_num_positive("epsilon", 0.25).unwrap_err();
        assert!(err.contains("must be > 0"), "{err}");
        let zero = Parsed::parse(&s(&["coreness", "f", "--epsilon", "0"])).unwrap();
        assert!(zero.flag_num_positive("epsilon", 0.25).is_err());
        let nan = Parsed::parse(&s(&["coreness", "f", "--epsilon", "nan"])).unwrap();
        assert!(nan.flag_num_positive("epsilon", 0.25).is_err());
        let ok = Parsed::parse(&s(&["coreness", "f", "--epsilon", "0.1"])).unwrap();
        assert_eq!(ok.flag_num_positive("epsilon", 0.25).unwrap(), 0.1);
        // Defaults pass through untouched.
        let missing = Parsed::parse(&s(&["coreness", "f"])).unwrap();
        assert_eq!(missing.flag_num_positive("epsilon", 0.25).unwrap(), 0.25);
        // Integer flags: zero rejected.
        let n = Parsed::parse(&s(&["generate", "ba", "--nodes", "0"])).unwrap();
        assert!(n.flag_num_positive::<usize>("nodes", 10).is_err());
    }
}
