//! # dkc-cli
//!
//! A small command-line front end over the library: generate synthetic graphs,
//! inspect them, and run the paper's distributed approximation algorithms (or
//! the exact baselines) on edge-list files.
//!
//! ```text
//! dkc generate ba --nodes 10000 --attach 4 --out graph.edges
//! dkc stats graph.edges
//! dkc coreness graph.edges --epsilon 0.1 --exact --top 10
//! dkc orientation graph.edges --epsilon 0.5
//! dkc densest graph.edges --epsilon 0.25
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--flag value` pairs plus
//! positional arguments); see [`args`].

#![deny(deprecated)]

pub mod args;
pub mod commands;

/// Entry point used by the `dkc` binary: parses the raw arguments, dispatches
/// the command, and returns the output text (or a usage/error message).
pub fn run(raw_args: &[String]) -> Result<String, String> {
    let parsed = args::Parsed::parse(raw_args)?;
    commands::dispatch(&parsed)
}

/// The usage string printed on `--help` or on errors.
pub const USAGE: &str = "\
dkc — distributed approximate k-core / min-max orientation / densest subsets

USAGE:
  dkc generate <model> --nodes N [--out FILE] [--seed S] [model options]
      models: ba (--attach M), er (--prob P), chung-lu (--alpha A --avg-degree D),
              ws (--k K --beta B), grid (--rows R --cols C), path, cycle, complete
      common: --weights W   give edges random integer weights in 1..=W
  dkc stats <file> [--format F] [--stream]
      --stream computes one-pass statistics without materializing the graph
  dkc convert <in> <out> [--from F] [--to F]
      formats: edgelist (SNAP-style, sparse ids remapped), metis, binary (.dkcb);
      inferred from the file extension unless --from/--to is given
  dkc coreness <file> [--epsilon E] [--rounds T] [--lambda L] [--exact] [--top K]
               [--json FILE]   write the run's metrics as a benchmark report
      sharded execution (byte-identical counters, boundary traffic reported):
               [--shards N]      partition the nodes into N shards exchanging
                                 cross-shard delta frames
               [--shard-seed S]  seed of the hash partitioner (default 0)
      fault injection (deterministic, seeded by --fault-seed S):
               [--loss P] [--burst PERIOD:LEN] [--crash P:FIRST:LAST]
               [--partition F:FIRST:LAST]
               [--byzantine F:BEHAVIORS:FIRST:LAST]  a hashed F-fraction of
                           nodes misbehaves; BEHAVIORS is +-separated from
                           lie, equivocate, mute, spam (or \"all\")
               [--quarantine N]  silence a byzantine node after N accusations
      checkpoint / resume (kill-safe long runs):
               [--checkpoint FILE]      write an atomic checkpoint during the run
               [--checkpoint-every N]   rounds between checkpoints (default 1)
               [--resume FILE]          resume a killed run; rounds, threshold
                                        set, fault plan, and shard partition
                                        come from the checkpoint (conflicting
                                        flags rejected)
  dkc orientation <file> [--epsilon E] [--compare]
  dkc densest <file> [--epsilon E] [--exact]
  dkc help

Input files may use arbitrary sparse node ids (e.g. SNAP datasets): ids are
remapped to dense indices on load and original ids are reported in output.
Unknown flags are rejected; numeric flags are range-checked.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&s(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_stats_coreness_roundtrip() {
        let dir = std::env::temp_dir().join("dkc_cli_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let path_str = path.to_string_lossy().to_string();
        let out = run(&s(&[
            "generate", "ba", "--nodes", "200", "--attach", "3", "--seed", "7", "--out", &path_str,
        ]))
        .unwrap();
        assert!(out.contains("200 nodes"));

        let stats = run(&s(&["stats", &path_str])).unwrap();
        assert!(stats.contains("nodes: 200"));

        let core = run(&s(&[
            "coreness",
            &path_str,
            "--epsilon",
            "0.5",
            "--exact",
            "--top",
            "3",
        ]))
        .unwrap();
        assert!(core.contains("max ratio"));

        let orient = run(&s(&[
            "orientation",
            &path_str,
            "--epsilon",
            "0.5",
            "--compare",
        ]))
        .unwrap();
        assert!(orient.contains("max in-degree"));

        let densest = run(&s(&["densest", &path_str, "--epsilon", "0.5", "--exact"])).unwrap();
        assert!(densest.contains("best cluster density"));
    }
}
