//! Command implementations. Every command returns its full output as a
//! `String` so the logic is unit-testable without capturing stdout.

use crate::args::Parsed;
use dkc_baselines::{greedy_orientation, peeling_orientation, weighted_coreness};
use dkc_core::api::{approximate_orientation, rounds_for_epsilon, weak_densest_subsets};
use dkc_core::checkpoint::{
    resume_compact_elimination, run_compact_elimination_checkpointed,
    run_compact_elimination_checkpointed_sharded, CheckpointConfig,
};
use dkc_core::ratio::ApproxRatio;
use dkc_core::threshold::ThresholdSet;
use dkc_distsim::ExecutionMode;
use dkc_flow::{densest_subgraph, fractional_orientation_lower_bound};
use dkc_graph::generators as gen;
use dkc_graph::ingest::{read_dataset, stream_stats, write_dataset, Dataset, DatasetFormat};
use dkc_graph::io::write_edge_list;
use dkc_graph::properties::{degree_stats, diameter_double_sweep};
use dkc_graph::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Dispatches a parsed command line.
pub fn dispatch(parsed: &Parsed) -> Result<String, String> {
    match parsed.command.as_str() {
        "help" | "--help" | "-h" => Ok(crate::USAGE.to_string()),
        "generate" => generate(parsed),
        "stats" => stats(parsed),
        "coreness" => coreness(parsed),
        "orientation" => orientation(parsed),
        "densest" => densest(parsed),
        "convert" => convert(parsed),
        other => Err(format!("unknown command {other:?}\n{}", crate::USAGE)),
    }
}

/// Resolves a dataset format from an explicit flag value or, absent the
/// flag, from the file extension (defaulting to the edge-list format).
fn resolve_format(parsed: &Parsed, flag: &str, path: &str) -> Result<DatasetFormat, String> {
    match parsed.flags.get(flag) {
        Some(value) => DatasetFormat::from_flag(value).ok_or_else(|| {
            format!("unknown format {value:?} for --{flag}; expected edgelist|metis|binary")
        }),
        None => Ok(DatasetFormat::from_path_or_default(path)),
    }
}

/// Loads the input dataset (positional 0) with sparse external ids remapped
/// to dense internal indices; command output reports the original ids.
fn load(parsed: &Parsed) -> Result<Dataset, String> {
    let path = parsed.positional(0, "input dataset file")?;
    let format = resolve_format(parsed, "format", path)?;
    read_dataset(path, format).map_err(|e| format!("failed to read {path}: {e}"))
}

fn generate(parsed: &Parsed) -> Result<String, String> {
    parsed.expect_flags(&[
        "nodes",
        "seed",
        "out",
        "attach",
        "prob",
        "alpha",
        "avg-degree",
        "k",
        "beta",
        "rows",
        "cols",
        "weights",
    ])?;
    let model = parsed.positional(0, "generator model")?;
    let n: usize = parsed.flag_num_positive("nodes", 1000)?;
    let seed: u64 = parsed.flag_num("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = match model {
        "ba" => {
            let attach: usize = parsed.flag_num("attach", 3)?;
            gen::barabasi_albert(n, attach, &mut rng)
        }
        "er" => {
            let p: f64 = parsed.flag_num("prob", 0.01)?;
            gen::erdos_renyi(n, p, &mut rng)
        }
        "chung-lu" => {
            let alpha: f64 = parsed.flag_num("alpha", 2.5)?;
            let avg: f64 = parsed.flag_num("avg-degree", 8.0)?;
            gen::chung_lu_power_law(n, alpha, avg, &mut rng)
        }
        "ws" => {
            let k: usize = parsed.flag_num("k", 6)?;
            let beta: f64 = parsed.flag_num("beta", 0.1)?;
            gen::watts_strogatz(n, k, beta, &mut rng)
        }
        "grid" => {
            let rows: usize = parsed.flag_num("rows", 10)?;
            let cols: usize = parsed.flag_num("cols", n / 10)?;
            gen::grid_graph(rows, cols)
        }
        "path" => gen::path_graph(n),
        "cycle" => gen::cycle_graph(n),
        "complete" => gen::complete_graph(n),
        other => {
            return Err(format!(
                "unknown generator model {other:?}\n{}",
                crate::USAGE
            ))
        }
    };
    let max_weight: u32 = parsed.flag_num("weights", 1)?;
    if max_weight > 1 {
        g = gen::with_random_integer_weights(&g, max_weight, &mut rng);
    }
    let mut out = format!(
        "generated {model}: {} nodes, {} edges, total weight {:.1}\n",
        g.num_nodes(),
        g.num_edges(),
        g.total_edge_weight()
    );
    let target = parsed.flag_str("out", "");
    if !target.is_empty() {
        write_edge_list(&g, &target).map_err(|e| format!("failed to write {target}: {e}"))?;
        let _ = writeln!(out, "written to {target}");
    } else {
        out.push_str(&dkc_graph::io::to_edge_list(&g));
    }
    Ok(out)
}

fn stats(parsed: &Parsed) -> Result<String, String> {
    parsed.expect_flags(&["format", "stream"])?;
    if parsed.switch("stream") {
        // One-pass streaming statistics: no adjacency lists are built, so
        // memory stays O(distinct nodes + distinct edges).
        let path = parsed.positional(0, "input dataset file")?;
        let format = resolve_format(parsed, "format", path)?;
        let s = stream_stats(path, format).map_err(|e| format!("failed to read {path}: {e}"))?;
        let mut out = String::new();
        let _ = writeln!(out, "nodes: {}", s.nodes);
        let _ = writeln!(out, "edges: {}", s.edges);
        let _ = writeln!(out, "total edge weight: {:.2}", s.total_weight);
        let _ = writeln!(
            out,
            "weighted degree: min {:.2} / mean {:.2} / max {:.2}",
            s.min_degree, s.mean_degree, s.max_degree
        );
        let _ = writeln!(out, "(streaming pass: diameter and density omitted)");
        return Ok(out);
    }
    let ds = load(parsed)?;
    let g = &ds.graph;
    let csr = CsrGraph::from(g);
    let deg = degree_stats(g);
    let diameter = diameter_double_sweep(&csr, NodeId(0));
    let mut out = String::new();
    let _ = writeln!(out, "nodes: {}", g.num_nodes());
    let _ = writeln!(out, "edges: {}", g.num_edges());
    let _ = writeln!(out, "total edge weight: {:.2}", g.total_edge_weight());
    let _ = writeln!(out, "density w(E)/n: {:.3}", g.density());
    let _ = writeln!(
        out,
        "weighted degree: min {:.2} / mean {:.2} / max {:.2}",
        deg.min, deg.mean, deg.max
    );
    let _ = writeln!(out, "hop diameter (double-sweep lower bound): {diameter}");
    let _ = writeln!(out, "unit weights: {}", g.is_unit_weighted());
    if !ds.ids.is_identity() {
        let _ = writeln!(out, "sparse external ids remapped to 0..{}", g.num_nodes());
    }
    Ok(out)
}

fn convert(parsed: &Parsed) -> Result<String, String> {
    parsed.expect_flags(&["from", "to"])?;
    let input = parsed.positional(0, "input dataset file")?;
    let output = parsed.positional(1, "output dataset file")?;
    let from = resolve_format(parsed, "from", input)?;
    let to = resolve_format(parsed, "to", output)?;
    let ds = read_dataset(input, from).map_err(|e| format!("failed to read {input}: {e}"))?;
    write_dataset(&ds, output, to).map_err(|e| format!("failed to write {output}: {e}"))?;
    Ok(format!(
        "converted {input} ({}) -> {output} ({}): {} nodes, {} edges\n",
        from.name(),
        to.name(),
        ds.graph.num_nodes(),
        ds.graph.num_edges()
    ))
}

/// Builds a `FaultPlan` from the fault flags (`--loss P`,
/// `--burst PERIOD:LEN`, `--crash P:FIRST:LAST`, `--partition F:FIRST:LAST`,
/// `--byzantine F:BEHAVIORS:FIRST:LAST`, `--quarantine THRESHOLD`,
/// `--fault-seed S`) through the shared spec grammar in
/// `dkc_distsim::faults::spec` — the exact parser the `exp_*` binaries use,
/// so both front ends accept identical specs and derive identical seeds.
fn fault_plan(parsed: &Parsed) -> Result<dkc_distsim::FaultPlan, String> {
    use dkc_distsim::faults::spec;
    let seed: u64 = parsed.flag_num("fault-seed", spec::DEFAULT_SEED)?;
    spec::plan_from_flags(
        parsed.flags.get("loss").map(String::as_str),
        parsed.flags.get("burst").map(String::as_str),
        parsed.flags.get("crash").map(String::as_str),
        parsed.flags.get("partition").map(String::as_str),
        parsed.flags.get("byzantine").map(String::as_str),
        parsed.flags.get("quarantine").map(String::as_str),
        seed,
    )
}

/// Parses `--checkpoint PATH` / `--checkpoint-every N` into a
/// [`CheckpointConfig`]; `--checkpoint-every` without a path is an error,
/// `--checkpoint` alone defaults to a checkpoint every round.
fn checkpoint_config(parsed: &Parsed) -> Result<Option<CheckpointConfig>, String> {
    let path = parsed.flag_str("checkpoint", "");
    if path.is_empty() {
        if parsed.flags.contains_key("checkpoint-every") {
            return Err("--checkpoint-every requires --checkpoint <path>".to_string());
        }
        return Ok(None);
    }
    let every: usize = parsed.flag_num_positive("checkpoint-every", 1)?;
    Ok(Some(CheckpointConfig {
        path: path.into(),
        every,
    }))
}

/// Flags that name run parameters recorded in a checkpoint's preamble; with
/// `--resume` they would be silently ignored, so they are rejected instead.
const RESUME_CONFLICTS: [&str; 12] = [
    "rounds",
    "epsilon",
    "lambda",
    "loss",
    "burst",
    "crash",
    "partition",
    "byzantine",
    "quarantine",
    "fault-seed",
    "shards",
    "shard-seed",
];

fn coreness(parsed: &Parsed) -> Result<String, String> {
    parsed.expect_flags(&[
        "epsilon",
        "rounds",
        "lambda",
        "exact",
        "top",
        "json",
        "format",
        "loss",
        "burst",
        "crash",
        "partition",
        "byzantine",
        "quarantine",
        "fault-seed",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "shards",
        "shard-seed",
    ])?;
    let ckpt = checkpoint_config(parsed)?;
    let ds = load(parsed)?;
    let g = &ds.graph;
    let resume_path = parsed.flag_str("resume", "");
    let (approx, faults, resumed_from) = if !resume_path.is_empty() {
        // The run's parameters live in the checkpoint preamble; flags that
        // would contradict it are rejected rather than silently ignored.
        for flag in RESUME_CONFLICTS {
            if parsed.flags.contains_key(flag) {
                return Err(format!(
                    "--{flag} conflicts with --resume: the run's parameters \
                     (rounds, threshold set, fault plan, shard partition) come \
                     from the checkpoint"
                ));
            }
        }
        let resumed = resume_compact_elimination(
            g,
            std::path::Path::new(&resume_path),
            ExecutionMode::Parallel,
            ckpt.as_ref(),
        )
        .map_err(|e| format!("failed to resume from {resume_path}: {e}"))?;
        let approx = dkc_core::api::CorenessApproximation {
            guaranteed_factor: dkc_core::api::guaranteed_factor(
                g.num_nodes(),
                resumed.rounds_target,
            ) * resumed.threshold_set.rounding_loss(),
            values: resumed.outcome.surviving,
            rounds: resumed.rounds_target,
            metrics: resumed.outcome.metrics,
        };
        (approx, resumed.faults, Some(resumed.resumed_from))
    } else {
        let epsilon: f64 = parsed.flag_num_positive("epsilon", 0.25)?;
        let default_rounds = rounds_for_epsilon(g.num_nodes(), epsilon);
        let rounds: usize = parsed.flag_num("rounds", default_rounds)?;
        let faults = fault_plan(parsed)?;
        let lambda: f64 = parsed.flag_num("lambda", 0.0)?;
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(format!("--lambda must be >= 0 (got {lambda})"));
        }
        // ThresholdSet::power_grid requires lambda >= 1e-12 (the grid base
        // must be representable above 1); turn smaller positive values into a
        // clean CLI error instead of an assertion panic.
        if lambda > 0.0 && lambda < 1e-12 {
            return Err(format!(
                "--lambda must be 0 (exact) or >= 1e-12 (got {lambda})"
            ));
        }
        let threshold_set = if lambda > 0.0 {
            ThresholdSet::power_grid(lambda)
        } else {
            ThresholdSet::Reals
        };
        // `--shards N` selects the shard-partitioned executor; N >= 1 (1 is
        // the degenerate single-shard partition, byte-identical to unsharded
        // with zero boundary traffic).
        let shards = if parsed.flags.contains_key("shards") {
            Some(parsed.flag_num_positive::<usize>("shards", 1)?)
        } else {
            if parsed.flags.contains_key("shard-seed") {
                return Err("--shard-seed requires --shards".to_string());
            }
            None
        };
        let shard_seed: u64 = parsed.flag_num("shard-seed", 0)?;
        let from_outcome =
            |outcome: dkc_core::compact::CompactOutcome| dkc_core::api::CorenessApproximation {
                guaranteed_factor: dkc_core::api::guaranteed_factor(g.num_nodes(), rounds)
                    * threshold_set.rounding_loss(),
                values: outcome.surviving,
                rounds,
                metrics: outcome.metrics,
            };
        let approx = match (&ckpt, shards) {
            (None, None) => dkc_core::api::approximate_coreness_with_faults(
                g,
                rounds,
                threshold_set,
                ExecutionMode::Parallel,
                faults,
            ),
            (None, Some(z)) => dkc_core::api::approximate_coreness_sharded(
                g,
                rounds,
                threshold_set,
                faults,
                z,
                shard_seed,
            ),
            (Some(cfg), None) => from_outcome(
                run_compact_elimination_checkpointed(
                    g,
                    rounds,
                    threshold_set,
                    ExecutionMode::Parallel,
                    faults,
                    cfg,
                )
                .map_err(|e| format!("checkpointed run failed: {e}"))?,
            ),
            (Some(cfg), Some(z)) => from_outcome(
                run_compact_elimination_checkpointed_sharded(
                    g,
                    rounds,
                    threshold_set,
                    faults,
                    z,
                    shard_seed,
                    cfg,
                )
                .map_err(|e| format!("checkpointed run failed: {e}"))?,
            ),
        };
        (approx, faults, None)
    };
    let mut out = String::new();
    if let Some(from) = resumed_from {
        let _ = writeln!(out, "resumed from checkpoint at round {from}");
    }
    if let Some(cfg) = &ckpt {
        let _ = writeln!(
            out,
            "checkpointing to {} every {} round(s)",
            cfg.path.display(),
            cfg.every
        );
    }
    let _ = writeln!(
        out,
        "compact elimination: {} rounds, guaranteed factor {:.3}, {} messages, max message {} bits",
        approx.rounds,
        approx.guaranteed_factor,
        approx.metrics.total_messages(),
        approx.metrics.max_message_bits()
    );
    let _ = writeln!(
        out,
        "traffic: {} payload bits estimated, {} wire bits measured (encoded frames)",
        approx.metrics.total_payload_bits(),
        approx.metrics.total_wire_bits()
    );
    if approx.metrics.total_boundary_bits() > 0 {
        let _ = writeln!(
            out,
            "sharded execution: {} boundary bits in cross-shard delta frames, \
             {} boundary senders summed over rounds",
            approx.metrics.total_boundary_bits(),
            approx.metrics.total_boundary_nodes()
        );
    }
    if !faults.is_trivial() {
        let m = &approx.metrics;
        let _ = writeln!(
            out,
            "fault injection: {} dropped (loss {}, burst {}, partition {}, byzantine-mute {}), \
             {} crashed nodes; \
             values remain upper bounds but the factor is no longer guaranteed",
            m.total_dropped(),
            m.total_dropped_loss(),
            m.total_dropped_burst(),
            m.total_dropped_partition(),
            m.total_dropped_byzantine(),
            m.crashed_nodes()
        );
        if faults.byzantine.is_some() {
            let _ = writeln!(
                out,
                "byzantine detection: {} accusations, {} nodes quarantined",
                m.byzantine_accusations(),
                m.quarantined_nodes()
            );
        }
    }
    let top: usize = parsed.flag_num("top", 5)?;
    let mut ranked: Vec<usize> = (0..g.num_nodes()).collect();
    ranked.sort_by(|&a, &b| approx.values[b].partial_cmp(&approx.values[a]).unwrap());
    let _ = writeln!(out, "top {top} nodes by approximate coreness:");
    for &v in ranked.iter().take(top) {
        // Report the dataset's original (external) id, not the dense index.
        let _ = writeln!(
            out,
            "  node {}: beta = {:.3}",
            ds.external(NodeId::new(v)),
            approx.values[v]
        );
    }
    if parsed.switch("exact") {
        let exact = weighted_coreness(g);
        let ratio = ApproxRatio::compute(&approx.values, &exact);
        let _ = writeln!(
            out,
            "vs exact coreness: max ratio {:.3}, mean ratio {:.3}, degeneracy {:.2}",
            ratio.max,
            ratio.mean,
            exact.iter().fold(0.0f64, |a, &b| a.max(b))
        );
    }
    let json_path = parsed.flag_str("json", "");
    if !json_path.is_empty() {
        let mut report = dkc_bench::Report::with_scale_name("cli-coreness", "custom");
        if let Some(from) = resumed_from {
            report.push_note(format!("resumed from checkpoint at round {from}"));
        }
        report.extend(vec![dkc_bench::ExperimentRecord::from_metrics(
            "cli",
            parsed.positional(0, "input edge-list file")?,
            "custom",
            &approx.metrics,
        )]);
        report
            .write_to(&json_path)
            .map_err(|e| format!("failed to write report {json_path}: {e}"))?;
        let _ = writeln!(out, "benchmark report written to {json_path}");
    }
    Ok(out)
}

fn orientation(parsed: &Parsed) -> Result<String, String> {
    parsed.expect_flags(&["epsilon", "compare", "format"])?;
    let ds = load(parsed)?;
    let g = &ds.graph;
    let epsilon: f64 = parsed.flag_num_positive("epsilon", 0.25)?;
    let approx = approximate_orientation(g, epsilon, ExecutionMode::Parallel);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "distributed orientation: {} rounds, max in-degree {:.3} (guaranteed factor {:.3})",
        approx.rounds, approx.max_in_degree, approx.guaranteed_factor
    );
    if parsed.switch("compare") {
        let rho = fractional_orientation_lower_bound(g);
        let peel = peeling_orientation(g);
        let greedy = greedy_orientation(g);
        let _ = writeln!(out, "LP lower bound rho*: {rho:.3}");
        let _ = writeln!(
            out,
            "ratios vs rho*: distributed {:.3}, peeling {:.3}, greedy {:.3}",
            approx.max_in_degree / rho.max(1e-12),
            peel.max_in_degree / rho.max(1e-12),
            greedy.max_in_degree / rho.max(1e-12)
        );
    }
    Ok(out)
}

fn densest(parsed: &Parsed) -> Result<String, String> {
    parsed.expect_flags(&["epsilon", "exact", "format"])?;
    let ds = load(parsed)?;
    let g = &ds.graph;
    let epsilon: f64 = parsed.flag_num_positive("epsilon", 0.25)?;
    let result = weak_densest_subsets(g, epsilon, ExecutionMode::Parallel);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "weak densest subsets: {} clusters, {} total rounds (phases {:?})",
        result.clusters.len(),
        result.rounds_total,
        result.phase_rounds
    );
    let _ = writeln!(out, "best cluster density: {:.3}", result.best_density);
    let mut clusters = result.clusters.clone();
    clusters.sort_by(|a, b| b.actual_density.partial_cmp(&a.actual_density).unwrap());
    for c in clusters.iter().take(5) {
        let _ = writeln!(
            out,
            "  leader {} : size {}, density {:.3}",
            ds.external(c.leader),
            c.size,
            c.actual_density
        );
    }
    if parsed.switch("exact") {
        let exact = densest_subgraph(g);
        let _ = writeln!(
            out,
            "exact densest subset: density {:.3}, size {} (ratio {:.3})",
            exact.density,
            exact.size(),
            exact.density / result.best_density.max(1e-12)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Parsed {
        Parsed::parse(&v.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn temp_graph() -> String {
        static GRAPH: std::sync::OnceLock<String> = std::sync::OnceLock::new();
        GRAPH
            .get_or_init(|| {
                let dir = std::env::temp_dir().join("dkc_cli_cmd_test");
                std::fs::create_dir_all(&dir).unwrap();
                let path = dir.join(format!("small-{}.edges", std::process::id()));
                let mut rng = StdRng::seed_from_u64(3);
                let g = gen::barabasi_albert(80, 3, &mut rng);
                write_edge_list(&g, &path).unwrap();
                path.to_string_lossy().to_string()
            })
            .clone()
    }

    #[test]
    fn generate_inline_output_without_file() {
        let out = dispatch(&parse(&["generate", "path", "--nodes", "5"])).unwrap();
        assert!(out.contains("5 nodes"));
        assert!(out.contains("0 1 1"));
    }

    #[test]
    fn generate_rejects_unknown_model() {
        assert!(dispatch(&parse(&["generate", "hypercube", "--nodes", "8"])).is_err());
    }

    #[test]
    fn stats_reports_basic_quantities() {
        let path = temp_graph();
        let out = dispatch(&parse(&["stats", &path])).unwrap();
        assert!(out.contains("nodes: 80"));
        assert!(out.contains("hop diameter"));
    }

    #[test]
    fn coreness_with_quantization_and_exact() {
        let path = temp_graph();
        let out = dispatch(&parse(&[
            "coreness",
            &path,
            "--epsilon",
            "0.5",
            "--lambda",
            "0.1",
            "--exact",
            "--top",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("max ratio"));
        assert!(out.contains("top 2 nodes"));
        // The measured wire counter is reported next to the estimate.
        assert!(out.contains("wire bits measured"), "{out}");
        assert!(out.contains("payload bits estimated"), "{out}");
    }

    #[test]
    fn orientation_and_densest_commands() {
        let path = temp_graph();
        let o = dispatch(&parse(&["orientation", &path, "--compare"])).unwrap();
        assert!(o.contains("rho*"));
        let d = dispatch(&parse(&["densest", &path, "--exact"])).unwrap();
        assert!(d.contains("exact densest subset"));
    }

    #[test]
    fn missing_file_is_reported() {
        let err = dispatch(&parse(&["stats", "/nonexistent/nowhere.edges"])).unwrap_err();
        assert!(err.contains("failed to read"));
    }

    #[test]
    fn typoed_flags_are_rejected() {
        let path = temp_graph();
        let err = dispatch(&parse(&["coreness", &path, "--epsilonn", "0.1"])).unwrap_err();
        assert!(err.contains("--epsilonn"), "{err}");
        assert!(err.contains("supported flags"), "{err}");
        let err = dispatch(&parse(&["stats", &path, "--top", "3"])).unwrap_err();
        assert!(err.contains("--top"), "{err}");
        let err = dispatch(&parse(&["generate", "path", "--nodse", "5"])).unwrap_err();
        assert!(err.contains("--nodse"), "{err}");
    }

    #[test]
    fn coreness_fault_flags_run_and_report() {
        let path = temp_graph();
        let out = dispatch(&parse(&[
            "coreness",
            &path,
            "--epsilon",
            "0.5",
            "--loss",
            "0.2",
            "--crash",
            "0.3:2:6",
            "--fault-seed",
            "11",
        ]))
        .unwrap();
        assert!(out.contains("fault injection:"), "{out}");
        assert!(out.contains("crashed nodes"), "{out}");
        // Fault-free runs stay silent about fault injection.
        let clean = dispatch(&parse(&["coreness", &path, "--epsilon", "0.5"])).unwrap();
        assert!(!clean.contains("fault injection"), "{clean}");
    }

    #[test]
    fn coreness_fault_flags_are_validated() {
        let path = temp_graph();
        let err = dispatch(&parse(&["coreness", &path, "--loss", "1.5"])).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
        let err = dispatch(&parse(&["coreness", &path, "--crash", "0.5"])).unwrap_err();
        assert!(err.contains("<p>:<first-round>:<last-round>"), "{err}");
        let err = dispatch(&parse(&["coreness", &path, "--crash", "0.5:9:2"])).unwrap_err();
        assert!(err.contains("first <= last"), "{err}");
        // Round-1 crashes would freeze nodes at uninitialized (infinite)
        // surviving numbers; the flag surface rejects them.
        let err = dispatch(&parse(&["coreness", &path, "--crash", "0.5:1:4"])).unwrap_err();
        assert!(err.contains("2 <= first"), "{err}");
        let err = dispatch(&parse(&["coreness", &path, "--burst", "3:9"])).unwrap_err();
        assert!(err.contains("len <= period"), "{err}");
        let err = dispatch(&parse(&["coreness", &path, "--partition", "x:1:2"])).unwrap_err();
        assert!(err.contains("expects a probability"), "{err}");
        // Fault flags belong to coreness only (for now).
        let err = dispatch(&parse(&["stats", &path, "--loss", "0.1"])).unwrap_err();
        assert!(err.contains("--loss"), "{err}");
    }

    #[test]
    fn coreness_shards_match_unsharded_and_report_boundary_traffic() {
        let path = temp_graph();
        let plain = dispatch(&parse(&["coreness", &path, "--rounds", "6", "--top", "3"])).unwrap();
        let sharded = dispatch(&parse(&[
            "coreness",
            &path,
            "--rounds",
            "6",
            "--top",
            "3",
            "--shards",
            "4",
            "--shard-seed",
            "7",
        ]))
        .unwrap();
        // Same coreness estimates: the per-line "top K" output must be
        // identical. (Wire accounting is not compared here — the unsharded CLI
        // path runs the parallel executor, whose frame counts differ from the
        // sparse lockstep that the sharded engine is byte-identical to; that
        // identity is asserted in `dkc-core` and E15.)
        let top = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("  node"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(top(&plain), top(&sharded), "sharded run diverged");
        assert!(sharded.contains("sharded execution:"), "{sharded}");
        assert!(!plain.contains("sharded execution:"), "{plain}");
        // A single shard has no boundary, hence no boundary line.
        let one = dispatch(&parse(&[
            "coreness", &path, "--rounds", "6", "--shards", "1",
        ]))
        .unwrap();
        assert!(!one.contains("sharded execution:"), "{one}");
        // Sharding composes with fault injection.
        let faulty = dispatch(&parse(&[
            "coreness", &path, "--rounds", "8", "--shards", "2", "--loss", "0.2",
        ]))
        .unwrap();
        assert!(faulty.contains("fault injection:"), "{faulty}");
        assert!(faulty.contains("sharded execution:"), "{faulty}");
    }

    #[test]
    fn coreness_shard_flags_are_validated() {
        let path = temp_graph();
        let err = dispatch(&parse(&["coreness", &path, "--shards", "0"])).unwrap_err();
        assert!(err.contains("must be > 0"), "{err}");
        let err = dispatch(&parse(&["coreness", &path, "--shard-seed", "7"])).unwrap_err();
        assert!(err.contains("--shard-seed requires --shards"), "{err}");
        // Shard flags belong to coreness only (for now).
        let err = dispatch(&parse(&["stats", &path, "--shards", "2"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    /// A sharded checkpointed run resumes into the same shard partition (the
    /// preamble carries the topology), matching the uninterrupted sharded
    /// run on every deterministic counter, boundary traffic included.
    #[test]
    fn coreness_sharded_checkpoint_and_resume_match() {
        let path = temp_graph();
        let dir = std::env::temp_dir().join("dkc_cli_cmd_test");
        let pid = std::process::id();
        let ck = dir.join(format!("shard-resume-{pid}.dkck"));
        let ref_json = dir.join(format!("shard-ckref-{pid}.json"));
        let res_json = dir.join(format!("shard-ckres-{pid}.json"));
        let ck_s = ck.to_string_lossy().to_string();
        let ref_s = ref_json.to_string_lossy().to_string();
        let res_s = res_json.to_string_lossy().to_string();
        let base = [
            "coreness",
            path.as_str(),
            "--rounds",
            "8",
            "--shards",
            "3",
            "--shard-seed",
            "5",
            "--loss",
            "0.1",
            "--fault-seed",
            "11",
        ];
        let mut v: Vec<&str> = base.to_vec();
        v.extend(["--json", &ref_s]);
        dispatch(&parse(&v)).unwrap();
        let mut v: Vec<&str> = base.to_vec();
        v.extend(["--checkpoint", &ck_s, "--checkpoint-every", "3"]);
        dispatch(&parse(&v)).unwrap();
        let out = dispatch(&parse(&[
            "coreness", &path, "--resume", &ck_s, "--json", &res_s,
        ]))
        .unwrap();
        assert!(out.contains("resumed from checkpoint at round 6"), "{out}");
        let reference = dkc_bench::Report::read_from(&ref_json).unwrap();
        let resumed = dkc_bench::Report::read_from(&res_json).unwrap();
        let (a, b) = (&reference.records[0], &resumed.records[0]);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.wire_bits, b.wire_bits);
        assert_eq!(a.node_updates, b.node_updates);
        assert_eq!(a.dropped_loss, b.dropped_loss);
        assert_eq!(a.boundary_bits, b.boundary_bits);
        assert_eq!(a.boundary_nodes, b.boundary_nodes);
        assert!(
            a.boundary_bits > 0,
            "3 shards must exchange boundary frames"
        );
    }

    #[test]
    fn coreness_byzantine_flags_run_and_report() {
        let path = temp_graph();
        let out = dispatch(&parse(&[
            "coreness",
            &path,
            "--rounds",
            "10",
            "--byzantine",
            "0.3:all:2:8",
            "--quarantine",
            "1",
            "--fault-seed",
            "11",
        ]))
        .unwrap();
        assert!(out.contains("byzantine-mute"), "{out}");
        assert!(out.contains("byzantine detection:"), "{out}");
        assert!(out.contains("accusations"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
        // Non-byzantine fault runs do not print the detection line.
        let plain = dispatch(&parse(&["coreness", &path, "--loss", "0.2"])).unwrap();
        assert!(!plain.contains("byzantine detection"), "{plain}");
    }

    #[test]
    fn coreness_byzantine_flags_are_validated() {
        let path = temp_graph();
        let err = dispatch(&parse(&["coreness", &path, "--byzantine", "0.2"])).unwrap_err();
        assert_eq!(
            err,
            "--byzantine expects <fraction>:<behaviors>:<first-round>:<last-round>, got \"0.2\""
        );
        let err = dispatch(&parse(&["coreness", &path, "--byzantine", "1.5:all:2:9"])).unwrap_err();
        assert_eq!(err, "--byzantine must be in [0, 1] (got 1.5)");
        let err = dispatch(&parse(&[
            "coreness",
            &path,
            "--byzantine",
            "0.2:gossip:2:9",
        ]))
        .unwrap_err();
        assert_eq!(
            err,
            "--byzantine: unknown behavior name \"gossip\" \
             (expected lie, equivocate, mute, spam, or all)"
        );
        let err = dispatch(&parse(&["coreness", &path, "--byzantine", "0.2:all:1:9"])).unwrap_err();
        assert_eq!(
            err,
            "--byzantine window must satisfy 2 <= first <= last (got 1..=9)"
        );
        let err = dispatch(&parse(&["coreness", &path, "--byzantine", "0.2:all:2:x"])).unwrap_err();
        assert_eq!(err, "--byzantine: last round must be an integer, got \"x\"");
        let err = dispatch(&parse(&["coreness", &path, "--quarantine", "2"])).unwrap_err();
        assert_eq!(err, "--quarantine requires --byzantine");
        let err = dispatch(&parse(&[
            "coreness",
            &path,
            "--byzantine",
            "0.2:all:2:9",
            "--quarantine",
            "many",
        ]))
        .unwrap_err();
        assert_eq!(
            err,
            "--quarantine expects an accusation threshold, got \"many\""
        );
        // Byzantine flags belong to coreness only (for now).
        let err = dispatch(&parse(&["stats", &path, "--byzantine", "0.2:all:2:9"])).unwrap_err();
        assert!(err.contains("--byzantine"), "{err}");
    }

    #[test]
    fn epsilon_range_is_validated() {
        let path = temp_graph();
        for bad in ["-0.5", "0", "nan"] {
            let err = dispatch(&parse(&["coreness", &path, "--epsilon", bad])).unwrap_err();
            assert!(err.contains("must be > 0"), "{bad}: {err}");
            let err = dispatch(&parse(&["orientation", &path, "--epsilon", bad])).unwrap_err();
            assert!(err.contains("must be > 0"), "{bad}: {err}");
            let err = dispatch(&parse(&["densest", &path, "--epsilon", bad])).unwrap_err();
            assert!(err.contains("must be > 0"), "{bad}: {err}");
        }
        let err = dispatch(&parse(&["coreness", &path, "--lambda", "-1"])).unwrap_err();
        assert!(err.contains("lambda"), "{err}");
        // Positive but below the power-grid representability floor: a clean
        // error, not an assertion panic.
        let err = dispatch(&parse(&["coreness", &path, "--lambda", "1e-13"])).unwrap_err();
        assert!(err.contains(">= 1e-12"), "{err}");
    }

    fn sparse_fixture() -> String {
        // Written exactly once: the tests sharing this fixture run on
        // parallel threads, and a concurrent truncate-then-write could hand
        // a reader a partial file.
        static FIXTURE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
        FIXTURE
            .get_or_init(|| {
                let dir = std::env::temp_dir().join("dkc_cli_cmd_test");
                std::fs::create_dir_all(&dir).unwrap();
                let path = dir.join(format!("sparse-{}.edges", std::process::id()));
                // A triangle plus a pendant, with SNAP-style sparse ids.
                std::fs::write(
                    &path,
                    "# sparse-id fixture\n1000000000 7 1\n7 123456 1\n123456 1000000000 1\n7 99 1\n",
                )
                .unwrap();
                path.to_string_lossy().to_string()
            })
            .clone()
    }

    #[test]
    fn sparse_ids_load_and_report_original_ids() {
        let path = sparse_fixture();
        let stats = dispatch(&parse(&["stats", &path])).unwrap();
        assert!(stats.contains("nodes: 4"), "{stats}");
        assert!(stats.contains("sparse external ids remapped"), "{stats}");
        let core = dispatch(&parse(&[
            "coreness",
            &path,
            "--epsilon",
            "0.5",
            "--top",
            "4",
        ]))
        .unwrap();
        assert!(core.contains("node 1000000000"), "{core}");
    }

    #[test]
    fn stream_stats_matches_materialized_stats() {
        let path = sparse_fixture();
        let streamed = dispatch(&parse(&["stats", &path, "--stream"])).unwrap();
        assert!(streamed.contains("nodes: 4"), "{streamed}");
        assert!(streamed.contains("edges: 4"), "{streamed}");
        assert!(streamed.contains("streaming pass"), "{streamed}");
    }

    #[test]
    fn convert_round_trips_with_identical_coreness() {
        use dkc_baselines::weighted_coreness;
        let sparse = sparse_fixture();
        let dir = std::env::temp_dir().join("dkc_cli_cmd_test");
        let pid = std::process::id();
        let metis = dir
            .join(format!("conv-{pid}.metis"))
            .to_string_lossy()
            .to_string();
        let binary = dir
            .join(format!("conv-{pid}.dkcb"))
            .to_string_lossy()
            .to_string();
        let back = dir
            .join(format!("conv_back-{pid}.edges"))
            .to_string_lossy()
            .to_string();
        dispatch(&parse(&["convert", &sparse, &metis])).unwrap();
        dispatch(&parse(&["convert", &metis, &binary])).unwrap();
        dispatch(&parse(&["convert", &binary, &back])).unwrap();
        let original = dkc_graph::ingest::read_dataset(&sparse, DatasetFormat::EdgeList).unwrap();
        let reference = weighted_coreness(&original.graph);
        for (path, fmt) in [
            (&metis, DatasetFormat::Metis),
            (&binary, DatasetFormat::Binary),
            (&back, DatasetFormat::EdgeList),
        ] {
            let ds = dkc_graph::ingest::read_dataset(path, fmt).unwrap();
            let coreness = weighted_coreness(&ds.graph);
            assert_eq!(
                coreness,
                reference,
                "coreness drifted through {}",
                fmt.name()
            );
        }
    }

    #[test]
    fn convert_rejects_unknown_formats() {
        let sparse = sparse_fixture();
        let err = dispatch(&parse(&[
            "convert",
            &sparse,
            "/tmp/x.edges",
            "--to",
            "parquet",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown format"), "{err}");
        let err = dispatch(&parse(&["convert", &sparse])).unwrap_err();
        assert!(err.contains("output dataset file"), "{err}");
    }

    #[test]
    fn coreness_checkpoint_and_resume_match_uninterrupted_run() {
        let path = temp_graph();
        let dir = std::env::temp_dir().join("dkc_cli_cmd_test");
        let pid = std::process::id();
        let ck = dir.join(format!("resume-{pid}.dkck"));
        let ref_json = dir.join(format!("ckref-{pid}.json"));
        let res_json = dir.join(format!("ckres-{pid}.json"));
        let ck_s = ck.to_string_lossy().to_string();
        let ref_s = ref_json.to_string_lossy().to_string();
        let res_s = res_json.to_string_lossy().to_string();
        let base = [
            "coreness",
            path.as_str(),
            "--rounds",
            "8",
            "--loss",
            "0.1",
            "--fault-seed",
            "11",
        ];
        // Uninterrupted reference run.
        let mut v: Vec<&str> = base.to_vec();
        v.extend(["--json", &ref_s]);
        dispatch(&parse(&v)).unwrap();
        // The same run with checkpoints every 3 rounds (boundaries 3 and 6;
        // the file ends up holding round 6).
        let mut v: Vec<&str> = base.to_vec();
        v.extend(["--checkpoint", &ck_s, "--checkpoint-every", "3"]);
        let out = dispatch(&parse(&v)).unwrap();
        assert!(out.contains("checkpointing to"), "{out}");
        assert!(ck.exists());
        // Resume finishes the remaining rounds; all run parameters come from
        // the checkpoint, so only output flags are passed.
        let out = dispatch(&parse(&[
            "coreness", &path, "--resume", &ck_s, "--json", &res_s,
        ]))
        .unwrap();
        assert!(out.contains("resumed from checkpoint at round 6"), "{out}");
        // Every deterministic counter matches the uninterrupted run.
        let reference = dkc_bench::Report::read_from(&ref_json).unwrap();
        let resumed = dkc_bench::Report::read_from(&res_json).unwrap();
        let (a, b) = (&reference.records[0], &resumed.records[0]);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.payload_bits, b.payload_bits);
        assert_eq!(a.max_message_bits, b.max_message_bits);
        assert_eq!(a.wire_bits, b.wire_bits);
        assert_eq!(a.node_updates, b.node_updates);
        assert_eq!(a.dropped_loss, b.dropped_loss);
        assert_eq!(a.dropped_burst, b.dropped_burst);
        assert_eq!(a.dropped_partition, b.dropped_partition);
        assert_eq!(a.crashed_nodes, b.crashed_nodes);
        // The resumed report carries a provenance note; the reference does not.
        assert!(reference.notes.is_empty());
        assert!(
            resumed
                .notes
                .iter()
                .any(|n| n.contains("resumed from checkpoint at round 6")),
            "{:?}",
            resumed.notes
        );
    }

    #[test]
    fn coreness_checkpoint_flags_are_validated() {
        let path = temp_graph();
        // --checkpoint-every needs a path to write to.
        let err = dispatch(&parse(&["coreness", &path, "--checkpoint-every", "2"])).unwrap_err();
        assert!(err.contains("requires --checkpoint"), "{err}");
        // Zero intervals are rejected by the numeric range check.
        let err = dispatch(&parse(&[
            "coreness",
            &path,
            "--checkpoint",
            "/tmp/x.dkck",
            "--checkpoint-every",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("checkpoint-every"), "{err}");
        // Run-parameter flags conflict with --resume.
        for flag in RESUME_CONFLICTS {
            let dashed = format!("--{flag}");
            let err = dispatch(&parse(&[
                "coreness",
                &path,
                "--resume",
                "/tmp/x.dkck",
                &dashed,
                "3",
            ]))
            .unwrap_err();
            assert!(err.contains("conflicts with --resume"), "{flag}: {err}");
        }
        // A missing checkpoint file is a clean error.
        let err = dispatch(&parse(&[
            "coreness",
            &path,
            "--resume",
            "/nonexistent/nowhere.dkck",
        ]))
        .unwrap_err();
        assert!(err.contains("failed to resume"), "{err}");
    }

    #[test]
    fn coreness_json_writes_a_valid_report() {
        let path = temp_graph();
        let report_path = std::env::temp_dir()
            .join("dkc_cli_cmd_test")
            .join("coreness_report.json");
        let report_str = report_path.to_string_lossy().to_string();
        let out = dispatch(&parse(&[
            "coreness",
            &path,
            "--epsilon",
            "0.5",
            "--json",
            &report_str,
        ]))
        .unwrap();
        assert!(out.contains("benchmark report written"));
        let report = dkc_bench::Report::read_from(&report_path).unwrap();
        assert_eq!(report.suite, "cli-coreness");
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].total_messages > 0);
        assert_eq!(report.records[0].scale, "custom");
    }
}
