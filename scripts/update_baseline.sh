#!/usr/bin/env bash
# Regenerate ALL committed CI baselines in one invocation after an
# INTENTIONAL change to the deterministic counters (protocol change, new
# experiment, new workload):
#
#   scripts/update_baseline.sh    # rewrites bench/baselines/{tiny,ingest-tiny,frontier-tiny,faults-tiny,byzantine-tiny,sharding-tiny}.json
#
# Each report is generated to a temporary file and VERIFIED to parse as the
# current report schema (v6, with every mandatory counter present) before it
# replaces the committed baseline — a producer bug can never clobber a good
# baseline with a malformed one. The machine-dependent timing fields
# (wall_clock_ms, messages_per_sec) are zeroed before committing —
# scripts/check_bench.sh ignores them anyway, and zeroing keeps regeneration
# diffs limited to the counters that actually changed.
set -euo pipefail
cd "$(dirname "$0")/.."

# verify_and_zero <report.json>: schema-v6 validation + timing zeroing in one
# pass; exits non-zero (leaving the committed baseline untouched) on any
# missing mandatory counter or header field.
verify_and_zero() {
    python3 - "$1" <<'PY'
import json
import sys

path = sys.argv[1]
COUNTERS = ("rounds", "total_messages", "payload_bits", "max_message_bits",
            "wire_bits", "node_updates", "dropped_loss", "dropped_burst",
            "dropped_partition", "dropped_byzantine", "crashed_nodes",
            "byzantine_accusations", "quarantined_nodes", "boundary_bits",
            "boundary_nodes")
with open(path) as fh:
    try:
        doc = json.load(fh)
    except json.JSONDecodeError as e:
        sys.exit(f"update_baseline: {path}: invalid JSON: {e}")
version = doc.get("schema_version")
if version != 6:
    sys.exit(f"update_baseline: {path}: expected schema_version 6, "
             f"got {version!r} — refusing to install as a baseline")
for field in ("suite", "scale"):
    if not isinstance(doc.get(field), str) or not doc[field]:
        sys.exit(f"update_baseline: {path}: missing header field {field!r}")
recs = doc.get("records")
if not isinstance(recs, list) or not recs:
    sys.exit(f"update_baseline: {path}: missing or empty \"records\"")
problems = []
for i, rec in enumerate(recs):
    for k in ("experiment", "workload", "scale"):
        if k not in rec:
            problems.append(f"record {i}: missing identity field {k!r}")
    for c in COUNTERS:
        if c not in rec:
            problems.append(f"record {i}: missing counter {c!r}")
    rec["wall_clock_ms"] = 0.0
    rec["messages_per_sec"] = 0.0
if problems:
    for p in problems:
        print(f"update_baseline: {path}: {p}", file=sys.stderr)
    sys.exit(1)
with open(path, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"update_baseline: verified schema v6 and zeroed timings in "
      f"{len(recs)} records")
PY
}

# (producer binary, committed baseline) pairs — one loop regenerates all six.
pairs=(
    "exp_all       bench/baselines/tiny.json"
    "exp_ingest    bench/baselines/ingest-tiny.json"
    "exp_frontier  bench/baselines/frontier-tiny.json"
    "exp_faults    bench/baselines/faults-tiny.json"
    "exp_byzantine bench/baselines/byzantine-tiny.json"
    "exp_sharding  bench/baselines/sharding-tiny.json"
)

for pair in "${pairs[@]}"; do
    read -r bin baseline <<<"$pair"
    tmp="${baseline}.tmp"
    echo "update_baseline: regenerating ${baseline} via ${bin}"
    cargo run --release -p dkc-bench --bin "$bin" -- --scale tiny --json "$tmp"
    verify_and_zero "$tmp"
    mv "$tmp" "$baseline"
    echo "update_baseline: installed ${baseline}; review and commit the diff"
done
