#!/usr/bin/env bash
# Regenerate the committed CI baselines after an INTENTIONAL change to the
# deterministic counters (protocol change, new experiment, new workload):
#
#   scripts/update_baseline.sh    # rewrites bench/baselines/{tiny,ingest-tiny,frontier-tiny,faults-tiny}.json
#
# The machine-dependent timing fields (wall_clock_ms, messages_per_sec) are
# zeroed before committing — scripts/check_bench.sh ignores them anyway, and
# zeroing keeps regeneration diffs limited to the counters that actually
# changed.
set -euo pipefail
cd "$(dirname "$0")/.."

zero_timings() {
    python3 - "$1" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as fh:
    doc = json.load(fh)
for rec in doc["records"]:
    rec["wall_clock_ms"] = 0.0
    rec["messages_per_sec"] = 0.0
with open(path, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"zeroed timing fields in {len(doc['records'])} records; "
      f"review and commit {path}")
PY
}

baseline="bench/baselines/tiny.json"
cargo run --release -p dkc-bench --bin exp_all -- --scale tiny --json "$baseline"
zero_timings "$baseline"

ingest_baseline="bench/baselines/ingest-tiny.json"
cargo run --release -p dkc-bench --bin exp_ingest -- --scale tiny --json "$ingest_baseline"
zero_timings "$ingest_baseline"

frontier_baseline="bench/baselines/frontier-tiny.json"
cargo run --release -p dkc-bench --bin exp_frontier -- --scale tiny --json "$frontier_baseline"
zero_timings "$frontier_baseline"

faults_baseline="bench/baselines/faults-tiny.json"
cargo run --release -p dkc-bench --bin exp_faults -- --scale tiny --json "$faults_baseline"
zero_timings "$faults_baseline"
