#!/usr/bin/env bash
# CI crash-recovery smoke: prove the kill-and-resume guarantee end to end
# with a REAL SIGKILL, not a simulated cut.
#
#   scripts/crash_recovery_smoke.sh
#
# 1. Runs `dkc coreness` on the web-tiny fixture uninterrupted and records
#    its benchmark report (the reference).
# 2. Starts the same run with `--checkpoint ... --checkpoint-every 2` in the
#    background, waits for the first checkpoint to appear, and SIGKILLs the
#    process mid-run (asserting the run did NOT finish: its report file must
#    not exist).
# 3. Resumes from the checkpoint with `--resume` and diffs the resumed
#    report against the reference via scripts/check_bench.sh: every
#    deterministic counter (rounds, messages, payload/wire bits, node
#    updates, all four fault-drop counters) must be byte-identical.
#
# Uses the release binary directly — NOT `cargo run` — so the SIGKILL hits
# the simulator process itself instead of orphaning it behind cargo.
set -euo pipefail
cd "$(dirname "$0")/.."

DKC=target/release/dkc
if [[ ! -x "$DKC" ]]; then
    echo "crash_recovery_smoke: $DKC not built (run: cargo build --release)" >&2
    exit 2
fi

fixture=bench/fixtures/web-tiny.edges
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
ck="$workdir/run.dkck"
ref="$workdir/reference.json"
resumed="$workdir/resumed.json"
interrupted="$workdir/interrupted.json"

# Enough rounds that thousands of fsynced checkpoint writes keep the
# background run alive well past the kill; the run parameters (rounds,
# fault plan) are recorded in the checkpoint and recovered on resume.
flags=(--rounds 20000 --loss 0.2 --fault-seed 7)

echo "crash_recovery_smoke: uninterrupted reference run"
"$DKC" coreness "$fixture" "${flags[@]}" --json "$ref" > /dev/null

echo "crash_recovery_smoke: starting checkpointed run (SIGKILL incoming)"
"$DKC" coreness "$fixture" "${flags[@]}" \
    --checkpoint "$ck" --checkpoint-every 2 --json "$interrupted" > /dev/null &
pid=$!

# Wait for the first atomic checkpoint to land, then kill without mercy.
for _ in $(seq 1 400); do
    [[ -f "$ck" ]] && break
    sleep 0.025
done
if [[ ! -f "$ck" ]]; then
    kill -9 "$pid" 2>/dev/null || true
    echo "crash_recovery_smoke: no checkpoint appeared within 10s" >&2
    exit 1
fi
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

if [[ -f "$interrupted" ]]; then
    echo "crash_recovery_smoke: the run finished before SIGKILL landed —" \
         "raise --rounds so the kill interrupts it" >&2
    exit 1
fi
echo "crash_recovery_smoke: killed pid $pid mid-run; checkpoint survives" \
     "($(wc -c < "$ck") bytes)"

out=$("$DKC" coreness "$fixture" --resume "$ck" --json "$resumed")
if ! grep -q "resumed from checkpoint at round" <<<"$out"; then
    echo "crash_recovery_smoke: resume did not report its resume round:" >&2
    echo "$out" >&2
    exit 1
fi
grep "resumed from checkpoint at round" <<<"$out"

echo "crash_recovery_smoke: diffing deterministic counters (resumed vs reference)"
scripts/check_bench.sh "$resumed" "$ref"
echo "crash_recovery_smoke: OK — killed run resumed byte-identically"
