#!/usr/bin/env bash
# Gate a freshly produced benchmark report against a committed baseline.
#
#   scripts/check_bench.sh <report.json> <baseline.json>
#
# Compares only the DETERMINISTIC counters of each record — (experiment,
# workload, scale, rounds, total_messages, payload_bits, max_message_bits) —
# and fails on any drift: a changed counter, a missing record, or an
# unexpected extra record. Timing fields (wall_clock_ms, messages_per_sec)
# are machine-dependent and deliberately ignored.
#
# To update the baseline intentionally (e.g. a protocol change that alters
# message counts), regenerate it and commit the diff:
#
#   scripts/update_baseline.sh
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 <report.json> <baseline.json>" >&2
    exit 2
fi

report="$1"
baseline="$2"

for f in "$report" "$baseline"; do
    if [[ ! -f "$f" ]]; then
        echo "check_bench: no such file: $f" >&2
        exit 2
    fi
done

python3 - "$report" "$baseline" <<'PY'
import json
import sys

report_path, baseline_path = sys.argv[1], sys.argv[2]
COUNTERS = ("rounds", "total_messages", "payload_bits", "max_message_bits")


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != 1:
        sys.exit(f"check_bench: {path}: unsupported schema_version "
                 f"{doc.get('schema_version')!r}")
    records = {}
    for rec in doc["records"]:
        key = (rec["experiment"], rec["workload"], rec["scale"])
        if key in records:
            sys.exit(f"check_bench: {path}: duplicate record {key}")
        records[key] = tuple(rec[c] for c in COUNTERS)
    return records


report = load(report_path)
baseline = load(baseline_path)

failures = []
for key, expected in baseline.items():
    got = report.get(key)
    if got is None:
        failures.append(f"missing record {key} (baseline has it)")
    elif got != expected:
        detail = ", ".join(
            f"{name}: {e} -> {g}"
            for name, e, g in zip(COUNTERS, expected, got)
            if e != g
        )
        failures.append(f"counter drift in {key}: {detail}")
for key in report:
    if key not in baseline:
        failures.append(f"unexpected new record {key} (update the baseline)")

if failures:
    print(f"check_bench: {len(failures)} deterministic-counter failure(s) "
          f"comparing {report_path} against {baseline_path}:")
    for f in failures:
        print(f"  - {f}")
    print("If this change is intentional, regenerate the baseline (see the "
          "header of scripts/check_bench.sh) and commit it.")
    sys.exit(1)

print(f"check_bench: OK — {len(report)} records match the baseline "
      f"({baseline_path})")
PY
