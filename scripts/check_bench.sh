#!/usr/bin/env bash
# Gate a freshly produced benchmark report against a committed baseline.
#
#   scripts/check_bench.sh <report.json> <baseline.json>
#
# Compares only the DETERMINISTIC counters of each record — (experiment,
# workload, scale, rounds, total_messages, payload_bits, max_message_bits,
# wire_bits, node_updates, dropped_loss, dropped_burst, dropped_partition,
# dropped_byzantine, crashed_nodes, byzantine_accusations,
# quarantined_nodes, boundary_bits, boundary_nodes) — and fails on any
# drift: a changed counter, a missing record, or an unexpected extra
# record. Timing fields (wall_clock_ms, messages_per_sec) are
# machine-dependent and deliberately ignored.
#
# Accepts schema versions 1–6; a counter a record's schema version predates
# (node_updates before v2, the fault counters before v3, the measured
# wire_bits before v4, the byzantine counters before v5, the sharding
# counters before v6) defaults to 0 (see the migration note in
# crates/bench/src/report.rs).
#
# To update the baseline intentionally (e.g. a protocol change that alters
# message counts), regenerate it and commit the diff:
#
#   scripts/update_baseline.sh
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 <report.json> <baseline.json>" >&2
    exit 2
fi

report="$1"
baseline="$2"

for f in "$report" "$baseline"; do
    if [[ ! -f "$f" ]]; then
        echo "check_bench: no such file: $f" >&2
        exit 2
    fi
done

python3 - "$report" "$baseline" <<'PY'
import json
import sys

report_path, baseline_path = sys.argv[1], sys.argv[2]
COUNTERS = ("rounds", "total_messages", "payload_bits", "max_message_bits",
            "wire_bits", "node_updates", "dropped_loss", "dropped_burst",
            "dropped_partition", "dropped_byzantine", "crashed_nodes",
            "byzantine_accusations", "quarantined_nodes", "boundary_bits",
            "boundary_nodes")
# The schema version each counter became mandatory in; below it the counter
# defaults to 0 when absent.
COUNTER_SINCE = {"wire_bits": 4, "node_updates": 2, "dropped_loss": 3,
                 "dropped_burst": 3, "dropped_partition": 3,
                 "crashed_nodes": 3, "dropped_byzantine": 5,
                 "byzantine_accusations": 5, "quarantined_nodes": 5,
                 "boundary_bits": 6, "boundary_nodes": 6}


def load(path):
    """Parses a report, collecting EVERY malformed-record problem (missing
    identity fields, missing mandatory counters) into one failing message
    instead of dying on the first — a doctored or hand-edited report gets a
    complete per-counter diagnosis in a single run."""
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as e:
            sys.exit(f"check_bench: {path}: invalid JSON: {e}")
    version = doc.get("schema_version")
    if version not in (1, 2, 3, 4, 5, 6):
        sys.exit(f"check_bench: {path}: unsupported schema_version {version!r}")
    recs = doc.get("records")
    if not isinstance(recs, list):
        sys.exit(f"check_bench: {path}: missing or non-array \"records\" field")
    records = {}
    problems = []
    for i, rec in enumerate(recs):
        if not isinstance(rec, dict):
            problems.append(f"record {i} is not an object")
            continue
        missing_id = [k for k in ("experiment", "workload", "scale")
                      if k not in rec]
        if missing_id:
            problems.append(f"record {i} is missing identity field(s) "
                            + ", ".join(repr(k) for k in missing_id))
            continue
        key = (rec["experiment"], rec["workload"], rec["scale"])
        if key in records:
            problems.append(f"duplicate record {key}")
            continue
        counters = []
        complete = True
        for c in COUNTERS:
            # A counter is optional only in schema versions that predate it;
            # any other missing counter is malformed — and every one of them
            # is reported, not just the first.
            since = COUNTER_SINCE.get(c, 1)
            if version < since:
                counters.append(rec.get(c, 0))
            elif c not in rec:
                problems.append(f"record {key} is missing counter {c!r} "
                                f"(mandatory since schema v{since}; this "
                                f"report is v{version})")
                complete = False
            else:
                counters.append(rec[c])
        if complete:
            records[key] = tuple(counters)
    if problems:
        print(f"check_bench: {path}: {len(problems)} malformed record "
              f"problem(s):")
        for p in problems:
            print(f"  - {p}")
        sys.exit(1)
    return records


report = load(report_path)
baseline = load(baseline_path)

failures = []
for key, expected in baseline.items():
    got = report.get(key)
    if got is None:
        failures.append(f"missing record {key} (baseline has it)")
    elif got != expected:
        detail = ", ".join(
            f"{name}: {e} -> {g}"
            for name, e, g in zip(COUNTERS, expected, got)
            if e != g
        )
        failures.append(f"counter drift in {key}: {detail}")
for key in report:
    if key not in baseline:
        failures.append(f"unexpected new record {key} (update the baseline)")

if failures:
    print(f"check_bench: {len(failures)} deterministic-counter failure(s) "
          f"comparing {report_path} against {baseline_path}:")
    for f in failures:
        print(f"  - {f}")
    print("If this change is intentional, regenerate the baseline (see the "
          "header of scripts/check_bench.sh) and commit it.")
    sys.exit(1)

print(f"check_bench: OK — {len(report)} records match the baseline "
      f"({baseline_path})")
PY
